"""The coprocessor framework: server-side hooks and their operating context.

HBase coprocessors are the extension point Diff-Index is built on (§7):
"they listen to and intercept each data entry made to the hosting table,
and act based on the schemes they implement."  A :class:`RegionObserver`
registers for ``post_put`` / ``post_delete`` (inside the put RPC, after
the base write, before the ack) and ``pre_flush`` (the pause-and-drain
hook of Figure 5).

:class:`IndexOpContext` is the toolbox handed to observers and to the
APS: routed index puts/deletes and versioned base reads, each charged to
the simulated devices and tallied in the Table 2 counters.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import NoSuchRegionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.server import RegionServer
    from repro.cluster.table import TableDescriptor

__all__ = ["RegionObserver", "IndexOpContext"]


class RegionObserver:
    """Base class; hooks are generator coroutines so they may do I/O.

    ``span`` is the root tracing span of the enclosing put/delete RPC
    (see :mod:`repro.obs.tracing`); hooks parent their own spans to it so
    a mutation's full PI/RB/DI (or enqueue → APS-apply) story is one
    trace tree.  Observers written without the parameter still work —
    the server falls back to the span-less call form.
    """

    def post_put(self, server: "RegionServer", table: TableDescriptor,
                 row: bytes, values: Dict[str, bytes], ts: int,
                 span: Any = None) -> Generator[Any, Any, None]:
        return
        yield  # pragma: no cover

    def post_delete(self, server: "RegionServer", table: TableDescriptor,
                    row: bytes, ts: int, span: Any = None,
                    ) -> Generator[Any, Any, None]:
        return
        yield  # pragma: no cover

    def pre_flush(self, server: "RegionServer", region_name: str,
                  ) -> Generator[Any, Any, None]:
        return
        yield  # pragma: no cover


class IndexOpContext:
    """Server-bound executor for the primitive index-maintenance ops."""

    def __init__(self, server: "RegionServer"):
        self.server = server

    # -- metadata --------------------------------------------------------------

    def table_descriptor(self, table: str) -> TableDescriptor:
        return self.server.cluster.descriptor(table)

    def _span(self, name: str, parent: Any):
        """Child tracing span for one index-maintenance primitive — the
        paper's PI / RB / DI steps, timed individually."""
        return self.server.cluster.tracer.start(name, parent=parent,
                                                server=self.server.name)

    # -- primitive operations ----------------------------------------------------

    def base_read(self, table: str, row: bytes, columns: List[str],
                  max_ts: Optional[int], background: bool, span: Any = None,
                  ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        """RB: versioned read of the base row.  The base region normally
        lives on this very server (the put was routed here), so this is a
        local LSM read; after a region move it falls back to an RPC."""
        obs = self._span("RB", span)
        try:
            region = self.server.region_for(table, row)
            if region is not None:
                result = yield from self.server.local_read_row(
                    region, row, columns, max_ts, background=background)
                return result
            target_server, _region_name = self.server.cluster.locate(table,
                                                                     row)
            network = self.server.cluster.network
            result = yield from network.call(
                target_server,
                lambda: target_server.handle_get(table, row, columns, max_ts,
                                                 background=background))
            return result
        finally:
            obs.end()

    def _index_target(self, index_table: str, key: bytes):
        try:
            return self.server.cluster.locate(index_table, key)
        except NoSuchRegionError:
            # Mid-recovery: surface as an RPC failure so callers retry.
            from repro.errors import RpcError
            raise RpcError(f"no region for {index_table!r} (recovering)")

    def index_put(self, index_table: str, key: bytes, ts: int,
                  background: bool, span: Any = None,
                  ) -> Generator[Any, Any, None]:
        """PI: insert one key-only index entry, carrying the base ts."""
        obs = self._span("PI", span)
        try:
            target_server, _ = self._index_target(index_table, key)
            if target_server is self.server:
                yield from self.server.handle_index_put(
                    index_table, key, ts, background=background)
                return
            yield from self.server.cluster.network.call(
                target_server,
                lambda: target_server.handle_index_put(index_table, key, ts,
                                                       background=background))
        finally:
            obs.end()

    def index_ops_batch(self, target: Any, ops: list,
                        background: bool = True,
                        ) -> Generator[Any, Any, None]:
        """Deliver a batch of ("put"|"del", table, key, ts) ops to one
        server in a single RPC with one group-committed log write — the
        AUQ batching the paper credits async's throughput edge to.
        ``background=False`` is the foreground (multi_put) coalesced
        variant: it lands on the target's dedicated index-handler pool
        and tallies the synchronous Table 2 counters."""
        if target is None:
            from repro.errors import RpcError
            raise RpcError("no route for batched index ops (recovering)")
        if target is self.server:
            yield from self.server.handle_index_ops(ops,
                                                    background=background)
            return
        yield from self.server.cluster.network.call(
            target,
            lambda: target.handle_index_ops(ops, background=background))

    def index_delete(self, index_table: str, key: bytes, ts: int,
                     background: bool, span: Any = None,
                     ) -> Generator[Any, Any, None]:
        """DI: tombstone one index entry at ``ts`` (= base ``t_new − δ``)."""
        obs = self._span("DI", span)
        try:
            target_server, _ = self._index_target(index_table, key)
            if target_server is self.server:
                yield from self.server.handle_index_delete(
                    index_table, key, ts, background=background)
                return
            yield from self.server.cluster.network.call(
                target_server,
                lambda: target_server.handle_index_delete(
                    index_table, key, ts, background=background))
        finally:
            obs.end()
