"""Index maintenance utilities (§7: "a utility for index creation,
maintenance and cleanse").

* :func:`scrub_index` — the *cleanse*: sweep the index table and delete
  every stale entry (the double-check of Algorithm 2 applied offline to
  the whole index instead of lazily per query).  Running it after a
  lazy-scheme phase (sync-insert or validation) — or before
  strengthening an index's scheme — leaves the index exactly consistent.
* :func:`rebuild_index` — drop all entries and rebuild from base data.
* :func:`purge_discovered_entries` — synchronously drain the validation
  cleaner's backlog (the deferred GC of DESIGN.md §14, foregrounded).

Both run as client-driven coroutines, paying normal read/write costs, so
they can be benchmarked like any other workload.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Generator, TYPE_CHECKING

from repro.core.encoding import decode_index_key
from repro.core.index import IndexDescriptor, extract_index_values
from repro.lsm.types import KeyRange

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.client import Client
    from repro.cluster.cluster import MiniCluster

__all__ = ["ScrubReport", "scrub_index", "rebuild_index",
           "purge_discovered_entries"]


@dataclasses.dataclass
class ScrubReport:
    index_name: str
    entries_checked: int = 0
    stale_deleted: int = 0
    missing_inserted: int = 0


def scrub_index(cluster: "MiniCluster", client: "Client", index_name: str,
                repair_missing: bool = False,
                ) -> Generator[Any, Any, ScrubReport]:
    """Sweep every entry; delete the stale, optionally insert the missing.

    ``repair_missing=True`` additionally walks the base table and inserts
    entries that should exist but do not (useful after an unclean period
    with the drain protocol disabled)."""
    index = cluster.index_descriptor(index_name)
    report = ScrubReport(index_name)

    cells = yield from client.scan_table(index.table_name, KeyRange(),
                                         is_index=True)
    for cell in cells:
        report.entries_checked += 1
        values, rowkey = decode_index_key(cell.key, len(index.columns))
        row = yield from client.get(index.base_table, rowkey,
                                    columns=list(index.columns))
        current = {col: value for col, (value, _ts) in row.items()}
        base_tuple = extract_index_values(index, current)
        if base_tuple != tuple(values):
            yield from client.delete_index_entry(index.table_name, cell.key,
                                                 cell.ts)
            report.stale_deleted += 1

    if repair_missing:
        inserted = yield from _repair_missing(cluster, client, index)
        report.missing_inserted = inserted
    return report


def _repair_missing(cluster: "MiniCluster", client: "Client",
                    index: IndexDescriptor) -> Generator[Any, Any, int]:
    from repro.core.index import row_index_key
    from repro.core.verify import actual_entries

    present = set(actual_entries(cluster, index))
    inserted = 0
    for info in cluster.master.layout[index.base_table]:
        server = cluster.servers[info.server_name]
        region = server.regions.get(info.region_name)
        if region is None:
            continue
        for row, row_data in region.iter_base_rows():
            values = {col: value for col, (value, _ts) in row_data.items()}
            tup = extract_index_values(index, values)
            if tup is None:
                continue
            key = row_index_key(index, tup, row)
            if key in present:
                continue
            target_server, _region = cluster.locate(index.table_name, key)
            # A repair insert takes a FRESH timestamp: the entry's original
            # ts may be burned by a tombstone (that is why it is missing),
            # and the tombstone-masks-<=ts rule would swallow a re-insert
            # at the same ts.  A current ts stays correct: any future
            # legitimate delete of this entry uses a newer t_new − δ.
            ts = target_server.assign_repair_timestamp()
            yield from cluster.network.call(
                target_server,
                lambda s=target_server, k=key, t=ts:
                s.handle_index_put(index.table_name, k, t))
            inserted += 1
    return inserted


def purge_discovered_entries(cluster: "MiniCluster", client: "Client",
                             ) -> Generator[Any, Any, int]:
    """Drain the validation cleaner's whole backlog right now, paying
    normal delete costs — the foreground spelling of the background GC
    (useful before a benchmark snapshot or a verification pass)."""
    total = 0
    while cluster.validation_cleaner.backlog:
        purged = yield from cluster.validation_cleaner.drain_batch(client)
        if purged == 0:
            break   # only transiently-unroutable entries remain
        total += purged
    return total


def rebuild_index(cluster: "MiniCluster", client: "Client", index_name: str,
                  ) -> Generator[Any, Any, int]:
    """Tombstone every existing entry, then re-derive all entries from
    the base table.  Returns the number of entries rebuilt."""
    index = cluster.index_descriptor(index_name)
    cells = yield from client.scan_table(index.table_name, KeyRange(),
                                         is_index=True)
    for cell in cells:
        yield from client.delete_index_entry(index.table_name, cell.key,
                                             cell.ts)
    rebuilt = yield from _repair_missing(cluster, client, index)
    return rebuilt
