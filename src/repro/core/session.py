"""Client-side session consistency (§5.2, scheme async-session).

"The basic technique used to provide session consistency is to track
additional state in the client library": each session keeps private,
in-memory tables of the index entries (and base cells) its own writes
imply.  When the server acknowledges a put it returns the old value and
the assigned timestamp; the library derives the delete marker for the old
index entry and the new entry, exactly as the server-side maintenance
would.  A session-consistent read merges the server's answer with this
private state, giving read-your-writes without waiting for the AUQ.

Sessions expire after ``max_duration_ms`` of inactivity, and a memory cap
auto-disables session consistency rather than run out of memory — both
protections are from the paper.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import SessionExpiredError
from repro.core.index import IndexDescriptor, extract_index_values, row_index_key
from repro.lsm.types import DELTA_MS

__all__ = ["Session", "SessionEntry", "DEFAULT_SESSION_DURATION_MS"]

DEFAULT_SESSION_DURATION_MS = 30 * 60 * 1000.0   # "say 30 minutes"

_session_ids = itertools.count(1)


@dataclasses.dataclass
class SessionEntry:
    """Private view of one index entry: alive (inserted) or a delete marker."""

    index_key: bytes
    ts: int
    alive: bool


class Session:
    """Client-side session-consistency state (§5.2): the private cache of
    this session's own index updates, merged into reads so a writer sees
    its writes while async maintenance is still in flight."""

    def __init__(self, created_at: float,
                 max_duration_ms: float = DEFAULT_SESSION_DURATION_MS,
                 memory_limit_entries: int = 100_000):
        self.session_id = f"session-{next(_session_ids)}"
        self.created_at = created_at
        self.last_active = created_at
        self.max_duration_ms = max_duration_ms
        self.memory_limit_entries = memory_limit_entries
        self.ended = False
        # Auto-disabled when the private tables exceed the memory cap; the
        # API keeps working but degrades to plain eventual consistency.
        self.disabled = False
        # index name -> index_key -> newest private entry
        self._index_view: Dict[str, Dict[bytes, SessionEntry]] = {}
        # (table, row) -> column -> (value-or-None, ts)
        self._base_view: Dict[Tuple[str, bytes],
                              Dict[str, Tuple[Optional[bytes], int]]] = {}

    # -- lifecycle ------------------------------------------------------------

    def touch(self, now: float) -> None:
        if self.ended:
            raise SessionExpiredError(f"{self.session_id} already ended")
        if now - self.last_active > self.max_duration_ms:
            self.end()
            raise SessionExpiredError(
                f"{self.session_id} expired after "
                f"{self.max_duration_ms:.0f} ms of inactivity")
        self.last_active = now

    def end(self) -> None:
        """Garbage-collect the private tables (end_session / expiry)."""
        self.ended = True
        self._index_view.clear()
        self._base_view.clear()

    @property
    def entry_count(self) -> int:
        return (sum(len(v) for v in self._index_view.values())
                + sum(len(v) for v in self._base_view.values()))

    def _enforce_memory_cap(self) -> None:
        if self.entry_count > self.memory_limit_entries:
            self.disabled = True
            self._index_view.clear()
            self._base_view.clear()

    # -- recording writes -------------------------------------------------------

    def record_put(self, table: str, row: bytes, values: Dict[str, bytes],
                   old_values: Dict[str, Optional[bytes]], ts: int,
                   session_indexes: List[IndexDescriptor]) -> None:
        """Apply "the same logic as in the server" to the private tables."""
        if self.disabled:
            return
        base = self._base_view.setdefault((table, row), {})
        for col, value in values.items():
            base[col] = (value, ts)

        for index in session_indexes:
            if not any(col in values for col in index.columns):
                continue
            view = self._index_view.setdefault(index.name, {})
            new_tuple = extract_index_values(index, values)
            if new_tuple is not None:
                key = row_index_key(index, new_tuple, row)
                view[key] = SessionEntry(key, ts, alive=True)
            old_tuple = extract_index_values(index, old_values)
            if old_tuple is not None:
                old_key = row_index_key(index, old_tuple, row)
                # The delete marker at t_new − δ, as the server generates.
                existing = view.get(old_key)
                if existing is None or existing.ts <= ts - DELTA_MS:
                    view[old_key] = SessionEntry(old_key, ts - DELTA_MS,
                                                 alive=False)
        self._enforce_memory_cap()

    def record_delete(self, table: str, row: bytes, columns: List[str],
                      old_values: Dict[str, Optional[bytes]], ts: int,
                      session_indexes: List[IndexDescriptor]) -> None:
        if self.disabled:
            return
        base = self._base_view.setdefault((table, row), {})
        for col in columns:
            base[col] = (None, ts)
        for index in session_indexes:
            view = self._index_view.setdefault(index.name, {})
            old_tuple = extract_index_values(index, old_values)
            if old_tuple is not None:
                old_key = row_index_key(index, old_tuple, row)
                view[old_key] = SessionEntry(old_key, ts - DELTA_MS,
                                             alive=False)
        self._enforce_memory_cap()

    # -- merging reads ------------------------------------------------------------

    def merge_index_results(self, index_name: str,
                            server_entries: Dict[bytes, int],
                            range_start: bytes,
                            range_end: Optional[bytes]) -> Dict[bytes, int]:
        """Combine server index entries with the private view.

        ``server_entries`` maps index_key -> ts.  Private inserts within
        the scanned range are added; private delete markers suppress
        server entries they mask (entry ts <= marker ts).
        """
        if self.disabled:
            return server_entries
        merged = dict(server_entries)
        view = self._index_view.get(index_name, {})
        for key, entry in view.items():
            if key < range_start:
                continue
            if range_end is not None and key >= range_end:
                continue
            if entry.alive:
                if key not in merged or merged[key] < entry.ts:
                    merged[key] = entry.ts
            else:
                current = merged.get(key)
                if current is not None and current <= entry.ts:
                    del merged[key]
        return merged

    def merge_base_row(self, table: str, row: bytes,
                       server_row: Dict[str, Tuple[bytes, int]],
                       ) -> Dict[str, Tuple[bytes, int]]:
        """Read-your-writes for plain gets."""
        if self.disabled:
            return server_row
        private = self._base_view.get((table, row))
        if not private:
            return server_row
        merged = dict(server_row)
        for col, (value, ts) in private.items():
            server_ts = merged.get(col, (None, -1))[1]
            if ts >= server_ts:
                if value is None:
                    merged.pop(col, None)
                else:
                    merged[col] = (value, ts)
        return merged
