"""Asynchronous Update Queue (AUQ) and Asynchronous Processing Service (APS).

The async schemes acknowledge a put as soon as the base write is logged
and an :class:`IndexTask` is queued (Algorithm 3); APS workers drain the
queue in the background and run the index maintenance steps (Algorithm 4:
RB at ``t_new − δ``, delete old entry, insert new entry).  The AUQ also
receives *failed* synchronous index operations — the paper's §6.2
durability degradation: a sync-full put whose index RPC fails is not
rolled back, its maintenance is retried here until it succeeds.

The shared maintenance routine :func:`maintain_indexes` is used by both
the synchronous observers and the APS so the two paths cannot drift.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple, TYPE_CHECKING

from repro.errors import NoSuchRegionError, RpcError
from repro.core.index import extract_index_values, row_index_key
from repro.core.schemes import IndexScheme
from repro.lsm.types import DELTA_MS
from repro.sim.kernel import Timeout
from repro.sim.scatter import scatter_gather

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coprocessor import IndexOpContext

__all__ = ["IndexTask", "maintain_indexes", "maintain_indexes_batch",
           "aps_worker", "live_index_ops", "plan_insert_ops",
           "plan_delete_ops", "ship_index_ops",
           "APS_RETRY_BACKOFF_MS", "APS_RETRY_BACKOFF_CAP_MS"]

APS_RETRY_BACKOFF_MS = 5.0
APS_RETRY_BACKOFF_CAP_MS = 80.0


class IndexTask:
    """One base mutation awaiting (re-)execution of its index maintenance.

    ``new_values is None`` encodes a row delete: in LSM "deletion can be
    treated as a put with a null value and a timestamp" (§4.3), so the
    task only removes old entries.

    A ``__slots__`` class (not a dataclass): one of these is allocated per
    indexed mutation, which makes it one of the hottest small objects in
    the wall-clock profile.
    """

    __slots__ = ("table", "row", "new_values", "ts", "enqueued_at",
                 "index_names", "span_id", "epoch")

    def __init__(self, table: str, row: bytes,
                 new_values: Optional[Dict[str, bytes]], ts: int,
                 enqueued_at: float = 0.0,
                 index_names: Optional[Tuple[str, ...]] = None,
                 span_id: Optional[int] = None,
                 epoch: Optional[int] = None):
        self.table = table
        self.row = row
        self.new_values = new_values
        self.ts = ts                 # the base entry's timestamp (paper's T1)
        self.enqueued_at = enqueued_at
        # Restrict maintenance to these indexes (schemes are chosen per
        # index, §3.4, so one put may fan out into one task per scheme
        # group).  None means every index of the table — used by
        # crash-replay re-delivery.
        self.index_names = index_names
        # Tracing: id of the originating put's root span, so the APS apply
        # span links back to the mutation it serves (enqueue → apply path).
        self.span_id = span_id
        # DDL epoch at enqueue time.  A task must never maintain an index
        # created *after* it was enqueued: a same-named index recreated
        # after a drop would otherwise be resurrected with pre-drop images
        # that nothing ever deletes.  None (WAL crash-replay) means
        # "unfiltered", which is safe — replayed records predate no index
        # they name, and superseded images are masked by the later
        # mutations' own tombstones.
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndexTask({self.table!r}, {self.row!r}, ts={self.ts}, "
                f"indexes={self.index_names})")


def _skip_for_epoch(task: IndexTask, index: Any) -> bool:
    """True when the index was created after this task was enqueued (it
    belongs to a newer DDL epoch and this mutation must not touch it)."""
    return (task.epoch is not None
            and getattr(index, "created_epoch", 0) > task.epoch)


def _touched_indexes(descriptor: Any, task: IndexTask) -> list:
    """The global indexes this task must maintain: owned by the task's
    scheme group, alive at the task's epoch, and (for a put) covering at
    least one written column.  A row delete touches every owned index."""
    touched = []
    for index in descriptor.indexes.values():
        if index.is_local:
            continue  # local indexes are maintained inside the put record
        if task.index_names is not None and index.name not in task.index_names:
            continue
        if _skip_for_epoch(task, index):
            continue
        if task.new_values is None or any(col in task.new_values
                                          for col in index.columns):
            touched.append(index)
    return touched


def _fan_out(ctx: "IndexOpContext", thunks: list, site: str,
             ) -> Generator[Any, Any, None]:
    """Run one statement group (all PIs, or all DIs) in parallel.

    The group members target *distinct* index tables (one op per index),
    so they commute; the group boundary is a barrier, which is what keeps
    the per-index SU2→SU3→SU4 (or BA2→BA3→BA4) statement order intact.
    A single op skips the scatter machinery entirely.
    """
    if not thunks:
        return
    if len(thunks) == 1:
        yield from thunks[0]()
        return
    server = ctx.server
    yield scatter_gather(server.sim, thunks,
                         max_fanout=server.config.scatter_max_fanout,
                         name=site, metrics=server.cluster.metrics, site=site)


def maintain_indexes(ctx: "IndexOpContext", task: IndexTask,
                     background: bool, insert_first: bool,
                     span: Any = None) -> Generator[Any, Any, None]:
    """Run PI / RB / DI for every index the mutation touches.

    ``insert_first`` selects the statement order: the synchronous path
    follows Algorithm 1 (SU2 insert, SU3 read, SU4 delete); the APS
    follows Algorithm 4 (BA2 read, BA3 delete, BA4 insert).  Both orders
    converge because entries carry base timestamps.

    Ops within one statement group fan out to their (distinct) index
    regions in parallel; no timestamp is assigned inside the group (every
    entry carries the base ts fixed at SU1), so parallel landing order
    cannot perturb the δ arithmetic of §4.3.

    Raises :class:`RpcError` if any step ultimately fails — the caller
    decides whether to queue a retry (sync path) or back off (APS).
    """
    touched = _touched_indexes(ctx.table_descriptor(task.table), task)
    if not touched:
        return

    inserts = []
    if task.new_values is not None:
        for index in touched:
            new_tuple = extract_index_values(index, task.new_values)
            if new_tuple is not None:
                inserts.append(
                    (index, row_index_key(index, new_tuple, task.row)))

    insert_thunks = [
        (lambda index=index, key=key:
         ctx.index_put(index.table_name, key, task.ts,
                       background=background, span=span))
        for index, key in inserts]

    if insert_first:
        yield from _fan_out(ctx, insert_thunks, "index_pi")          # SU2

    # One base read covers every index (Table 2: sync-full pays 1 Base Read).
    columns = sorted({col for index in touched for col in index.columns})
    old_row = yield from ctx.base_read(                              # SU3/BA2
        task.table, task.row, columns, max_ts=task.ts - DELTA_MS,
        background=background, span=span)
    old_values = {col: value for col, (value, _ts) in old_row.items()}

    delete_thunks = []                                               # SU4/BA3
    for index in touched:
        old_tuple = extract_index_values(index, old_values)
        if old_tuple is None:
            continue
        old_key = row_index_key(index, old_tuple, task.row)
        delete_thunks.append(
            lambda index=index, old_key=old_key:
            ctx.index_delete(index.table_name, old_key,
                             task.ts - DELTA_MS,
                             background=background, span=span))
    yield from _fan_out(ctx, delete_thunks, "index_di")

    if not insert_first:
        yield from _fan_out(ctx, insert_thunks, "index_pi")          # BA4


def maintain_insert_only(ctx: "IndexOpContext", task: IndexTask,
                         span: Any = None) -> Generator[Any, Any, None]:
    """The sync-insert update path: SU1+SU2 only, skipping SU3/SU4 (§4.2).

    Stale entries are left behind on purpose; the read path repairs them
    (Algorithm 2 in :mod:`repro.core.reader`).
    """
    if task.new_values is None:
        return  # a delete inserts nothing; stale entries wait for read-repair
    descriptor = ctx.table_descriptor(task.table)
    for index in descriptor.indexes.values():
        if index.is_local:
            continue  # local indexes are maintained inside the put record
        if task.index_names is not None and index.name not in task.index_names:
            continue
        if _skip_for_epoch(task, index):
            continue
        if not any(col in task.new_values for col in index.columns):
            continue
        new_tuple = extract_index_values(index, task.new_values)
        if new_tuple is None:
            continue
        key = row_index_key(index, new_tuple, task.row)
        yield from ctx.index_put(index.table_name, key, task.ts,
                                 background=False, span=span)


def plan_insert_ops(ctx: "IndexOpContext", task: IndexTask) -> list:
    """SU2/BA4 for one task as a 5-tuple op list — pure computation, no
    I/O: every insert carries the base ts fixed at SU1 plus the target
    index's ``created_epoch`` for drop/recreate protection."""
    if task.new_values is None:
        return []  # a delete inserts nothing
    ops = []
    for index in _touched_indexes(ctx.table_descriptor(task.table), task):
        new_tuple = extract_index_values(index, task.new_values)
        if new_tuple is not None:
            ops.append(("put", index.table_name,
                        row_index_key(index, new_tuple, task.row),
                        task.ts,
                        getattr(index, "created_epoch", 0)))
    return ops


def plan_delete_ops(ctx: "IndexOpContext", task: IndexTask,
                    background: bool,
                    span: Any = None) -> Generator[Any, Any, list]:
    """SU3/BA2+BA3-plan for one task: ONE versioned base read at
    ``ts − δ`` covering every touched index, then the DI op list (each
    delete tombstones at ``ts − δ``, the §4.3 arithmetic)."""
    touched = _touched_indexes(ctx.table_descriptor(task.table), task)
    if not touched:
        return []
    columns = sorted({col for index in touched for col in index.columns})
    old_row = yield from ctx.base_read(
        task.table, task.row, columns, max_ts=task.ts - DELTA_MS,
        background=background, span=span)
    old_values = {col: value for col, (value, _ts) in old_row.items()}
    ops = []
    for index in touched:
        old_tuple = extract_index_values(index, old_values)
        if old_tuple is not None:
            ops.append(("del", index.table_name,
                        row_index_key(index, old_tuple, task.row),
                        task.ts - DELTA_MS,
                        getattr(index, "created_epoch", 0)))
    return ops


def plan_index_ops(ctx: "IndexOpContext", task: IndexTask,
                   span: Any = None) -> Generator[Any, Any, list]:
    """BA2 for one task: read the old row, return the DI/PI op list as
    ``("del"|"put", index_table, key, ts, epoch)`` tuples (deletes first —
    Algorithm 4's BA3 before BA4).  The trailing ``epoch`` is the target
    index's ``created_epoch`` at planning time, so delivery can drop ops
    whose index was dropped (or dropped and recreated) in the meantime."""
    dels = yield from plan_delete_ops(ctx, task, background=True, span=span)
    return dels + plan_insert_ops(ctx, task)


def ship_index_ops(ctx: "IndexOpContext", ops: list, background: bool,
                   site: str, span: Any = None) -> Generator[Any, Any, None]:
    """Deliver ONE statement group's ops as per-target batched RPCs.

    Ops bound for the same region server travel in one
    ``handle_index_ops`` call and share one group-committed WAL write;
    distinct targets fan out in parallel.  The call returns only when
    every delivery landed — it is the statement-group barrier of the
    batched foreground path (all PIs before any DI leaves).

    Raises on a stale route (``NoSuchRegionError``) or lost RPC; the
    caller owns the retry/degrade policy.
    """
    ops = live_index_ops(ctx.server.cluster, ops)
    if not ops:
        return
    groups: Dict[Any, list] = {}
    for op in ops:
        target, _region = ctx.server.cluster.locate(op[1], op[2])
        groups.setdefault(target, []).append(op)
    obs = ctx._span(site, span)
    try:
        thunks = [(lambda t=target, group=group:
                   ctx.index_ops_batch(t, group, background=background))
                  for target, group in groups.items()]
        yield from _fan_out(ctx, thunks, site)
    finally:
        obs.end()


def maintain_indexes_batch(ctx: "IndexOpContext", tasks: list,
                           span: Any = None) -> Generator[Any, Any, None]:
    """§8.2's batching applied to the FOREGROUND sync-full path: run
    Algorithm 1 for a whole multi_put batch as three phases —

    1. SU2: PI ops for EVERY row, grouped per target index region, one
       RPC + one group commit per group;
    2. SU3: one versioned base read per row at its own ``ts − δ``;
    3. SU4: DI ops grouped and shipped the same way.

    The phase boundary is a barrier, so the PI-before-DI statement-group
    order holds for every row at once; each row keeps the timestamps
    fixed at its SU1, so coalescing cannot perturb the δ arithmetic or
    the per-row staleness semantics.
    """
    insert_ops = []
    for task in tasks:
        insert_ops.extend(plan_insert_ops(ctx, task))
    yield from ship_index_ops(ctx, insert_ops, background=False,    # SU2
                              site="index_pi", span=span)
    delete_ops = []
    for task in tasks:                                              # SU3
        dels = yield from plan_delete_ops(ctx, task, background=False,
                                          span=span)
        delete_ops.extend(dels)
    yield from ship_index_ops(ctx, delete_ops, background=False,    # SU4
                              site="index_di", span=span)


def live_index_ops(cluster: Any, ops: list) -> list:
    """Drop ops whose target index no longer exists at its planning epoch.

    Re-checked on every delivery attempt (not just once): a drop can land
    between planning and delivery, or between delivery retries.  Without
    this, an in-flight op for a dropped index either spins forever
    (table gone → locate fails → infinite APS retry) or — worse — lands
    in a same-named recreated index and resurrects a pre-drop image."""
    by_table = getattr(cluster, "index_by_table", None)
    if by_table is None:
        return ops
    kept = []
    for op in ops:
        if len(op) > 4:
            live = by_table.get(op[1])
            if live is None or getattr(live, "created_epoch", 0) != op[4]:
                continue
        kept.append(op)
    return kept


def aps_worker(server: Any, worker_id: int) -> Generator[Any, Any, None]:
    """One APS thread: dequeue a burst, plan each task's ops, deliver them
    in per-target batches, repeat.

    * Batching — "this moderate higher throughput is credited to the
      batching of operations in AUQ" (§8.2): ops bound for the same
      region server travel in one RPC and share one group-committed WAL
      append, instead of one round trip + one log write each.
    * Retrying inside the worker (rather than re-enqueueing) keeps the
      task inside the in-flight latch, so the drain-before-flush barrier
      cannot complete while any index update is still owed — preserving
      the paper's ``PR(Flushed) = ∅`` invariant.
    """
    ctx = server.op_context
    while server.alive:
        task: Optional[IndexTask] = yield server.auq.get()
        server.obs_auq_depth.set(len(server.auq))
        if task is None or not server.alive:   # woken during shutdown
            return
        # Count the task as in-flight from the moment it leaves the queue
        # so backlog accounting (and the drain barrier) never lose sight
        # of it, even while the worker is paused at the operator gate.
        server.auq_inflight.increment()
        batch = [task]
        try:
            yield server.aps_gate.wait_open()  # operator pause toggle
            if not server.alive:
                return
            while (len(batch) < server.config.aps_batch_size
                   and len(server.auq) > 0):
                extra = server.auq.get_nowait()
                if extra is None:
                    break
                batch.append(extra)
                server.auq_inflight.increment()
            server.obs_auq_depth.set(len(server.auq))
            yield from _process_batch(server, ctx, batch)
        finally:
            for _ in batch:
                server.auq_inflight.decrement()


def _process_batch(server: Any, ctx: "IndexOpContext",
                   batch: list) -> Generator[Any, Any, None]:
    # One "aps_apply" span per task, parented to the originating put's
    # root span: the async half of the mutation's trace tree.
    tracer = server.cluster.tracer
    all_ops = []
    spans = []
    for task in batch:
        span = tracer.start("aps_apply", parent=task.span_id,
                            server=server.name, table=task.table)
        spans.append(span)
        ops = yield from plan_index_ops(ctx, task, span=span)
        all_ops.extend(ops)

    # Deliver only ops whose index is still alive at its planning epoch
    # (a drop may have raced the planning read above).
    all_ops = live_index_ops(server.cluster, all_ops)

    # Group by target server, preserving op order within a group.
    groups: Dict[Any, list] = {}
    for op in all_ops:
        _kind, table, key = op[0], op[1], op[2]
        try:
            target, _region = server.cluster.locate(table, key)
        except Exception:  # noqa: BLE001 - mid-recovery; retry below
            target = None
        groups.setdefault(target, []).append(op)

    for target, ops in groups.items():
        backoff = APS_RETRY_BACKOFF_MS
        while True:
            try:
                yield from ctx.index_ops_batch(target, ops)
                break
            except (NoSuchRegionError, RpcError):
                # NoSuchRegionError surfaces raw from a live server whose
                # region moved or split away mid-delivery (stale route);
                # the re-locate below picks up the new owner.
                server.aps_retries += 1
                server.obs_aps_retries.inc()
                yield Timeout(backoff)
                backoff = min(backoff * 2, APS_RETRY_BACKOFF_CAP_MS)
                if not server.alive:
                    return
                # A concurrent drop_index turns retries into a busy loop
                # (the table is gone, the RPC can never succeed) — filter
                # again before the next attempt.
                ops = live_index_ops(server.cluster, ops)
                if not ops:
                    break
                # Routing may have changed (recovery); re-resolve.
                try:
                    target, _region = server.cluster.locate(ops[0][1],
                                                            ops[0][2])
                except Exception:  # noqa: BLE001
                    target = None
    now = server.sim.now()
    for task, span in zip(batch, spans):
        server.staleness.record(task.ts, now)
        # Live Figure 11: the lag between the base entry's visibility (T1,
        # the base timestamp) and the moment its index maintenance landed
        # (T2, now) — same definition the StalenessTracker records, so the
        # two instrumentations can be cross-checked exactly.
        lag = max(0.0, now - task.ts)
        server.obs_auq_lag.observe(lag)
        server.obs_auq_lag_last.set(lag)
        span.end()
