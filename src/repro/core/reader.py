"""Index reads: ``getByIndex`` for every scheme.

* sync-full / async — one scan of the (small) index table returns the
  matching base rowkeys directly (Table 2: read = 1 Index Read);
* sync-insert — Algorithm 2: after the index scan, each candidate rowkey
  is double-checked against the base table; stale entries are filtered
  out *and repaired* (deleted at their own timestamp);
* validation — the same base-row check, but filter-only: stale entries
  are handed to the background cleaner instead of being repaired inline;
* async-session — the server results are merged with the session's
  private index view before returning (read-your-writes).

Predicates: exact match on the full column tuple, or a range over the
first indexed column (how Figure 9 sweeps ``item_price``).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import NoSuchIndexError
from repro.core.encoding import (IndexableValue, decode_index_key,
                                 encode_value, index_prefix,
                                 prefix_upper_bound)
from repro.core.index import IndexDescriptor, extract_index_values
from repro.core.schemes import IndexScheme
from repro.core.session import Session
from repro.lsm.types import KeyRange

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.client import Client

__all__ = ["IndexHit", "index_scan_range", "get_by_index"]


class IndexHit:
    """One matching index entry, decoded.

    A plain ``__slots__`` class rather than a dataclass: reads decode one
    of these per matching entry, and the wall-clock hot loop is sensitive
    to per-instance dict overhead.
    """

    __slots__ = ("rowkey", "values", "ts", "index_key")

    def __init__(self, rowkey: bytes, values: tuple, ts: int,
                 index_key: bytes):
        self.rowkey = rowkey
        self.values = values
        self.ts = ts
        self.index_key = index_key

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, IndexHit):
            return NotImplemented
        return (self.rowkey == other.rowkey and self.values == other.values
                and self.ts == other.ts and self.index_key == other.index_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndexHit(rowkey={self.rowkey!r}, values={self.values!r}, "
                f"ts={self.ts}, index_key={self.index_key!r})")


def index_scan_range(index: IndexDescriptor,
                     equals: Optional[Sequence[IndexableValue]] = None,
                     low: Optional[IndexableValue] = None,
                     high: Optional[IndexableValue] = None,
                     ) -> KeyRange:
    """The index-table key range selecting the requested entries.

    ``equals`` matches the leading column values exactly;
    ``low``/``high`` bound the first column (inclusive on both ends,
    matching the paper's price-range queries)."""
    if equals is not None:
        if len(equals) > len(index.columns):
            raise NoSuchIndexError(
                f"{index.name}: {len(equals)} values for "
                f"{len(index.columns)} columns")
        prefix = index_prefix(list(equals))
        return KeyRange(prefix, prefix_upper_bound(prefix))
    start = encode_value(low) if low is not None else b""
    if high is not None:
        end = prefix_upper_bound(encode_value(high))
    else:
        end = None
    return KeyRange(start, end)


def _decode_hits(index: IndexDescriptor, cells) -> List[IndexHit]:
    hits = []
    for cell in cells:
        values, rowkey = decode_index_key(cell.key, len(index.columns))
        hits.append(IndexHit(rowkey, tuple(values), cell.ts, cell.key))
    return hits


def get_by_index(client: "Client", index: IndexDescriptor,
                 equals: Optional[Sequence[IndexableValue]] = None,
                 low: Optional[IndexableValue] = None,
                 high: Optional[IndexableValue] = None,
                 limit: Optional[int] = None,
                 session: Optional[Session] = None,
                 ) -> Generator[Any, Any, List[IndexHit]]:
    """The client-library ``getByIndex`` (§7)."""
    key_range = index_scan_range(index, equals=equals, low=low, high=high)

    if index.is_local:
        # §3.1: a local index "has to be broadcast to each region" — one
        # call per server hosting base-table regions, results merged here.
        hits = yield from _broadcast_local(client, index, key_range, limit)
        return hits

    # SR1 / the single index read of sync-full and async.
    cells = yield from client.scan_table(index.table_name, key_range,
                                         limit=limit, is_index=True)
    hits = _decode_hits(index, cells)

    # Algorithm 2 double-check: always for sync-insert, and temporarily
    # for any scheme while an online ALTER away from a lazy scheme is
    # still scrubbing stale entries (IndexState.TRANSITION).
    if index.scheme is IndexScheme.SYNC_INSERT or index.needs_read_repair:
        hits = yield from _double_check(client, index, hits)
    elif index.scheme is IndexScheme.VALIDATION:
        hits = yield from _validate(client, index, hits)

    if (index.scheme is IndexScheme.ASYNC_SESSION and session is not None
            and not session.disabled):
        session.touch(client.cluster.sim.now())
        merged = session.merge_index_results(
            index.name, {h.index_key: h.ts for h in hits},
            key_range.start, key_range.end)
        hits = _decode_hits(index, [_KeyTs(k, ts)
                                    for k, ts in sorted(merged.items())])
        if limit is not None:
            hits = hits[:limit]
    return hits


class _KeyTs:
    """Duck-typed cell (key + ts) for re-decoding merged session results."""

    __slots__ = ("key", "ts")

    def __init__(self, key: bytes, ts: int):
        self.key = key
        self.ts = ts


def _broadcast_local(client: "Client", index: IndexDescriptor,
                     key_range: KeyRange, limit: Optional[int],
                     ) -> Generator[Any, Any, List[IndexHit]]:
    """Fan the query out to every server hosting the base table, in
    parallel, and merge the per-region answers in index-key order."""
    from repro.core.local import split_local_entry_key
    from repro.sim.scatter import scatter_gather

    cluster = client.cluster
    infos = cluster.master.regions_for_range(index.base_table, KeyRange())
    by_server = sorted({info.server_name for info in infos})

    def one_server(server):
        cells = yield from cluster.network.call(
            server, lambda: server.handle_local_index_scan(
                index.base_table, index.name, key_range, limit))
        return cells

    per_server = yield scatter_gather(
        cluster.sim,
        [lambda s=cluster.servers[name]: one_server(s)
         for name in by_server],
        max_fanout=client.max_fanout, name="lidx",
        metrics=cluster.metrics, site="local_index")

    merged = []
    for cells in per_server:
        for cell in cells:
            _name, index_key = split_local_entry_key(cell.key)
            merged.append(_KeyTs(index_key, cell.ts))
    merged.sort(key=lambda c: c.key)
    if limit is not None:
        merged = merged[:limit]
    return _decode_hits(index, merged)


def _double_check(client: "Client", index: IndexDescriptor,
                  hits: List[IndexHit],
                  ) -> Generator[Any, Any, List[IndexHit]]:
    """Algorithm 2, SR2: for every candidate, read the base row; keep the
    entry if the base value still matches, otherwise delete it from the
    index table (lazy repair).

    The K base reads travel as parallel per-server multigets (~1 round
    trip instead of K), and the repair deletes scatter too; counters,
    per-row charges and the final index state are identical to the
    sequential reference below (tested side by side).
    """
    if not hits:
        return []
    if not client.parallel_double_check:
        confirmed = yield from _double_check_sequential(client, index, hits)
        return confirmed
    metrics = client.cluster.metrics
    checks = metrics.counter("read_repair_checks", index=index.name)
    repairs = metrics.counter("read_repair_repairs", index=index.name)
    # Duplicate rowkeys (several entries of one row in a range query) stay
    # duplicated so the server charges/counts K base reads, exactly as the
    # sequential path did.
    row_map = yield from client.multi_get(
        index.base_table, [hit.rowkey for hit in hits],
        columns=list(index.columns))
    confirmed: List[IndexHit] = []
    stale: List[IndexHit] = []
    for hit in hits:
        checks.inc()
        row_data = row_map.get(hit.rowkey, {})
        current = {col: value for col, (value, _ts) in row_data.items()}
        if extract_index_values(index, current) == hit.values:
            confirmed.append(hit)
        else:
            # Stale: DI(v_index ⊕ k, ts) — delete that exact entry version.
            repairs.inc()
            stale.append(hit)
    if stale:
        from repro.sim.scatter import scatter_gather
        yield scatter_gather(
            client.cluster.sim,
            [lambda h=hit: client.delete_index_entry(index.table_name,
                                                     h.index_key, h.ts)
             for hit in stale],
            max_fanout=client.max_fanout, name="repair",
            metrics=metrics, site="read_repair")
    return confirmed


def _validate(client: "Client", index: IndexDescriptor,
              hits: List[IndexHit],
              ) -> Generator[Any, Any, List[IndexHit]]:
    """The validation scheme's read path (DESIGN.md §14): the same K
    parallel base reads as Algorithm 2's double-check, but stale entries
    are only *filtered*, never repaired inline — the read stays one
    scatter round trip, and the discovered entries are handed to the
    background cleaner for deferred deletion.
    """
    if not hits:
        return []
    cluster = client.cluster
    metrics = cluster.metrics
    validated = metrics.counter("validation_hits_validated_total",
                                index=index.name)
    filtered = metrics.counter("validation_hits_filtered_total",
                               index=index.name)
    row_map = yield from client.multi_get(
        index.base_table, [hit.rowkey for hit in hits],
        columns=list(index.columns))
    now = cluster.sim.now()
    confirmed: List[IndexHit] = []
    for hit in hits:
        row_data = row_map.get(hit.rowkey, {})
        current = {col: value for col, (value, _ts) in row_data.items()}
        if extract_index_values(index, current) == hit.values:
            validated.inc()
            confirmed.append(hit)
        else:
            # Stale but filtered: the client never sees it.  Lag is
            # measured from the entry's own version to now (how long the
            # dead entry has lingered).
            filtered.inc()
            cluster.staleness.note_stale(now - hit.ts, served=False)
            cluster.validation_cleaner.note(index.table_name, hit.index_key,
                                            hit.ts)
    return confirmed


def _double_check_sequential(client: "Client", index: IndexDescriptor,
                             hits: List[IndexHit],
                             ) -> Generator[Any, Any, List[IndexHit]]:
    """The pre-scatter reference implementation: one round trip per
    candidate.  Kept for equivalence tests (and as the readable spec of
    Algorithm 2's per-hit logic)."""
    metrics = client.cluster.metrics
    checks = metrics.counter("read_repair_checks", index=index.name)
    repairs = metrics.counter("read_repair_repairs", index=index.name)
    confirmed: List[IndexHit] = []
    for hit in hits:
        checks.inc()
        row_data = yield from client.get(index.base_table, hit.rowkey,
                                         columns=list(index.columns))
        current = {col: value for col, (value, _ts) in row_data.items()}
        base_tuple = extract_index_values(index, current)
        if base_tuple == hit.values:
            confirmed.append(hit)
        else:
            repairs.inc()
            yield from client.delete_index_entry(index.table_name,
                                                 hit.index_key, hit.ts)
    return confirmed
