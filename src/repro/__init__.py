"""Diff-Index: differentiated secondary indexes on a distributed
log-structured data store.

Reproduction of Tan, Tata, Tang, Fong — "Diff-Index: Differentiated Index
in Distributed Log-Structured Data Stores", EDBT 2014.

Quickstart::

    from repro import MiniCluster, IndexDescriptor, IndexScheme

    cluster = MiniCluster(num_servers=4).start()
    cluster.create_table("reviews")
    cluster.create_index(IndexDescriptor(
        "by_product", "reviews", ("product",),
        scheme=IndexScheme.SYNC_FULL))

    client = cluster.new_client()
    cluster.run(client.put("reviews", b"r1",
                           {"product": b"espresso", "stars": b"5"}))
    hits = cluster.run(client.get_by_index("by_product",
                                           equals=[b"espresso"]))
    assert hits[0].rowkey == b"r1"
"""

from repro.core import (ConsistencyLevel, IndexDescriptor, IndexHit,
                        IndexReport, IndexScheme, IndexScope, Session,
                        WorkloadProfile,
                        check_index, encode_value, decode_value,
                        recommend_scheme)
from repro.cluster import (Client, FaultPlan, MiniCluster,
                           MutationBatch, ServerConfig,
                           even_split_keys)
from repro.lsm import Cell, KeyRange
from repro.obs import MetricsRegistry, Tracer
from repro.placement import PlacementConfig, PlacementManager
from repro.replication import LatencyBound, ReadMode, ReplicationConfig
from repro.sim import LatencyModel

__version__ = "1.0.0"

__all__ = [
    "MiniCluster", "Client", "MutationBatch", "ServerConfig", "FaultPlan",
    "PlacementConfig", "PlacementManager",
    "ReplicationConfig", "ReadMode", "LatencyBound",
    "IndexDescriptor", "IndexScheme", "IndexScope", "ConsistencyLevel",
    "WorkloadProfile", "recommend_scheme",
    "IndexHit", "IndexReport", "Session", "check_index",
    "encode_value", "decode_value", "even_split_keys",
    "Cell", "KeyRange", "LatencyModel", "MetricsRegistry", "Tracer",
    "__version__",
]
