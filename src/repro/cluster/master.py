"""The HBase master: DDL and region placement.

Keeps the authoritative table catalog and region layout (§2.2: "HBase
Master is the management node dealing with tasks such as table creation
and destroy"); clients cache a copy of the layout and refresh it from
here when a route turns out stale.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import (NoSuchRegionError, NoSuchTableError,
                          TableExistsError)
from repro.lsm.types import KeyRange
from repro.cluster.region import Region
from repro.cluster.table import TableDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import MiniCluster
    from repro.cluster.server import RegionServer

__all__ = ["RegionInfo", "Master"]


@dataclasses.dataclass
class RegionInfo:
    region_name: str
    table: str
    key_range: KeyRange
    server_name: str
    # Follower replica hosts (leader excluded; empty at the default
    # replication_factor=1).  Anti-affinity invariant: never contains
    # server_name and never repeats a server.
    replica_servers: List[str] = dataclasses.field(default_factory=list)


class Master:
    def __init__(self, cluster: "MiniCluster"):
        self.cluster = cluster
        self.tables: Dict[str, TableDescriptor] = {}
        # Layout per table, sorted by region start key.
        self.layout: Dict[str, List[RegionInfo]] = {}
        # Bumped on every layout change (create/drop/split/move) so a
        # client can tell whether its cached partition map is current
        # without diffing it (see Client.layout_epoch).
        self.routing_epoch = 0
        self._region_seq = 0
        self._placement_cursor = 0

    # -- DDL -----------------------------------------------------------------

    def create_table(self, descriptor: TableDescriptor,
                     split_keys: Optional[List[bytes]] = None,
                     ) -> List[RegionInfo]:
        """Create a table pre-split at ``split_keys`` (sorted, interior
        boundaries), spreading regions round-robin over live servers."""
        if descriptor.name in self.tables:
            raise TableExistsError(descriptor.name)
        splits = sorted(split_keys or [])
        boundaries = [b""] + splits + [None]
        infos: List[RegionInfo] = []
        # Catalog first: follower placement below resolves the descriptor
        # and scores servers through the live layout.
        self.tables[descriptor.name] = descriptor
        for i in range(len(boundaries) - 1):
            key_range = KeyRange(boundaries[i], boundaries[i + 1])
            server = self._next_server()
            info = self._place_new_region(descriptor, key_range, server)
            infos.append(info)
        self.layout[descriptor.name] = infos
        if self.cluster.replication.enabled:
            from repro.replication.promote import ensure_replicas
            for info in infos:
                ensure_replicas(self.cluster, info)
        self.routing_epoch += 1
        return infos

    def drop_table(self, name: str) -> None:
        descriptor = self.tables.pop(name, None)
        if descriptor is None:
            raise NoSuchTableError(name)
        for info in self.layout.pop(name, []):
            server = self.cluster.servers.get(info.server_name)
            if server is not None:
                server.remove_region(info.region_name)
            for follower_name in info.replica_servers:
                follower = self.cluster.servers.get(follower_name)
                if follower is not None:
                    follower.remove_follower(info.region_name)
            self.cluster.hdfs.delete_store(name, info.region_name)
        self.routing_epoch += 1

    def _next_server(self) -> "RegionServer":
        alive = [s for s in self.cluster.servers.values() if s.alive]
        if not alive:
            raise NoSuchRegionError("no live region servers")
        server = alive[self._placement_cursor % len(alive)]
        self._placement_cursor += 1
        return server

    def _place_new_region(self, descriptor: TableDescriptor,
                          key_range: KeyRange,
                          server: "RegionServer") -> RegionInfo:
        self._region_seq += 1
        region_name = f"{descriptor.name},r{self._region_seq:04d}"
        region = Region(region_name, descriptor, key_range,
                        seed=self._region_seq)
        server.add_region(region)
        return RegionInfo(region_name, descriptor.name, key_range, server.name)

    def new_region_name(self, table: str) -> str:
        """Allocate a region name for the placement layer (split daughters
        share the table-wide sequence, so names never collide)."""
        self._region_seq += 1
        return f"{table},r{self._region_seq:04d}"

    # -- catalog ------------------------------------------------------------

    def descriptor(self, table: str) -> TableDescriptor:
        try:
            return self.tables[table]
        except KeyError:
            raise NoSuchTableError(table) from None

    # -- routing ------------------------------------------------------------

    def locate(self, table: str, row: bytes) -> RegionInfo:
        infos = self.layout.get(table)
        if not infos:
            raise NoSuchTableError(table)
        starts = [info.key_range.start for info in infos]
        idx = bisect_right(starts, row) - 1
        info = infos[max(idx, 0)]
        if not info.key_range.contains(row):
            raise NoSuchRegionError(f"{table!r} has no region for {row!r}")
        return info

    def regions_for_range(self, table: str,
                          key_range: KeyRange) -> List[RegionInfo]:
        infos = self.layout.get(table)
        if infos is None:
            raise NoSuchTableError(table)
        return [info for info in infos if info.key_range.overlaps(key_range)]

    def regions_on(self, server_name: str) -> List[RegionInfo]:
        return [info for infos in self.layout.values() for info in infos
                if info.server_name == server_name]

    def region_info(self, table: str, region_name: str,
                    ) -> Optional[RegionInfo]:
        """The layout's own record for a region, or None if it is gone
        (split away, or table dropped).  Identity matters: mutations via
        :meth:`reassign` / :meth:`replace_with_daughters` must act on the
        live object, not a snapshot copy."""
        for info in self.layout.get(table, []):
            if info.region_name == region_name:
                return info
        return None

    def reassign(self, info: RegionInfo, new_server_name: str) -> None:
        info.server_name = new_server_name
        self.routing_epoch += 1

    def replace_with_daughters(self, parent: RegionInfo,
                               daughters: List[RegionInfo]) -> None:
        """Split commit: swap the parent's layout slot for its daughters
        in one step.  The daughters cover exactly the parent's range, so
        sort order and contiguity are preserved by construction."""
        infos = self.layout[parent.table]
        idx = next(i for i, info in enumerate(infos)
                   if info.region_name == parent.region_name)
        infos[idx:idx + 1] = list(daughters)
        self.routing_epoch += 1

    def snapshot_layout(self) -> Dict[str, List[RegionInfo]]:
        """A client-cacheable copy of the partition map.
        ``dataclasses.replace`` is shallow — the replica list must be
        copied explicitly or the cache would alias the live layout."""
        return {table: [dataclasses.replace(
                            info,
                            replica_servers=list(info.replica_servers))
                        for info in infos]
                for table, infos in self.layout.items()}
