"""Distributed LSM store substrate (HBase-like): regions, region servers,
master, coordinator, simulated HDFS and network, and the client library."""

from repro.cluster.client import Client, MutationBatch
from repro.cluster.cluster import MiniCluster
from repro.cluster.coordinator import Coordinator
from repro.cluster.counters import OpCounters, Snapshot
from repro.cluster.hdfs import SimHDFS
from repro.cluster.master import Master, RegionInfo
from repro.cluster.network import FaultPlan, Network
from repro.cluster.recovery import recover_server, task_from_wal_record
from repro.cluster.region import Region, compose_cell_key, split_cell_key
from repro.cluster.server import RegionServer, ServerConfig
from repro.cluster.table import (TableDescriptor, TableKind, even_split_keys,
                                 index_table_name)

__all__ = [
    "MiniCluster", "Client", "MutationBatch", "RegionServer", "ServerConfig",
    "Master", "RegionInfo", "Coordinator",
    "Region", "compose_cell_key", "split_cell_key",
    "TableDescriptor", "TableKind", "index_table_name", "even_split_keys",
    "SimHDFS", "Network", "FaultPlan", "OpCounters", "Snapshot",
    "recover_server", "task_from_wal_record",
]
