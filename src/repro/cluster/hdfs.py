"""SimHDFS: the durable, replicated file layer under the cluster.

In HBase, write-ahead logs and flushed HTables live in HDFS, which is
fault-tolerant and reachable from every node — that is the foundation of
the recovery story (§5.3: "data in in-memory MemTables have their WAL
persisted in HDFS; on-disk HTables themselves persist on HDFS").  Here
the namespace is a plain dictionary owned by the cluster object, so it
survives the death of any region-server object by construction, while
still giving recovery code the same operations HBase uses: fetch a dead
server's WAL, list a region's store files, delete a replayed log.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import StorageError
from repro.lsm.sstable import SSTable
from repro.lsm.wal import WalRecord

__all__ = ["SimHDFS"]


class SimHDFS:
    def __init__(self) -> None:
        # WALs: one per region server, stored per region so the owning
        # server's per-flush roll-forward never scans unrelated regions.
        self._wals: Dict[str, Dict[str, List[WalRecord]]] = {}
        # Store files: (table, region) -> ordered SSTables (newest first).
        self._stores: Dict[Tuple[str, str], List[SSTable]] = {}
        # Meta namespace: small durable key/value documents (the DDL job
        # catalog lives here — the stand-in for an HBase meta table).
        # Values are JSON-able dicts; like the WALs, the namespace is
        # owned by the cluster object and survives any server's death.
        self._meta: Dict[str, dict] = {}

    # -- meta namespace ------------------------------------------------------

    def put_meta(self, key: str, value: dict) -> None:
        self._meta[key] = dict(value)

    def get_meta(self, key: str) -> dict:
        if key not in self._meta:
            raise StorageError(f"no meta document {key!r}")
        return dict(self._meta[key])

    def delete_meta(self, key: str) -> None:
        self._meta.pop(key, None)

    def list_meta(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._meta if k.startswith(prefix))

    # -- WAL namespace -------------------------------------------------------

    def create_wal(self, server_name: str) -> Dict[str, List[WalRecord]]:
        """Create (or truncate) the WAL backing map for a server."""
        backing: Dict[str, List[WalRecord]] = {}
        self._wals[server_name] = backing
        return backing

    def wal_records(self, server_name: str) -> List[WalRecord]:
        """The server's whole log in global seqno (append) order."""
        if server_name not in self._wals:
            raise StorageError(f"no WAL for server {server_name!r}")
        out = [record for records in self._wals[server_name].values()
               for record in records]
        out.sort(key=lambda record: record.seqno)
        return out

    def delete_wal(self, server_name: str) -> None:
        self._wals.pop(server_name, None)

    def has_wal(self, server_name: str) -> bool:
        return server_name in self._wals

    # -- store-file namespace --------------------------------------------------

    def set_store_files(self, table: str, region: str,
                        sstables: List[SSTable]) -> None:
        """Replace the durable store-file listing after flush/compaction."""
        self._stores[(table, region)] = list(sstables)

    def store_files(self, table: str, region: str) -> List[SSTable]:
        return list(self._stores.get((table, region), []))

    def copy_store_files(self, table: str, src_region: str,
                         dst_regions: List[str]) -> List[SSTable]:
        """Link one region's store files under other regions — the HBase
        reference-file analogue of a split: daughters point at the
        parent's files, no data is rewritten.  Returns the linked files."""
        files = self.store_files(table, src_region)
        for dst in dst_regions:
            self._stores[(table, dst)] = list(files)
        return files

    def delete_store(self, table: str, region: str) -> None:
        self._stores.pop((table, region), None)

    # -- diagnostics ------------------------------------------------------------

    @property
    def total_store_bytes(self) -> int:
        return sum(t.total_bytes
                   for tables in self._stores.values() for t in tables)

    @property
    def total_wal_records(self) -> int:
        return sum(len(records)
                   for regions in self._wals.values()
                   for records in regions.values())
