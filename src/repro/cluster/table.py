"""Table metadata.

A table is a named, range-partitioned keyspace of rows; each row holds
named columns (we model the paper's single-column-family case).  Index
tables are ordinary tables flagged ``kind=INDEX`` whose rows are key-only
index entries; the flag routes op-counter accounting (Table 2) and keeps
index tables from being indexed themselves.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.index import INDEX_TABLE_PREFIX, index_table_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.index import IndexDescriptor

__all__ = ["TableKind", "TableDescriptor", "INDEX_TABLE_PREFIX",
           "index_table_name"]


class TableKind(enum.Enum):
    BASE = "base"
    INDEX = "index"


@dataclasses.dataclass
class TableDescriptor:
    name: str
    kind: TableKind = TableKind.BASE
    max_versions: int = 3
    flush_threshold_bytes: int = 256 * 1024
    block_bytes: int = 4096
    prefix_compression: bool = False
    # Range-scan engine for this table's regions: "remix" keeps a REMIX-
    # style cross-SSTable sorted view (one cursor walk per scan), "heap"
    # is the classic per-SSTable K-way merge (DESIGN.md §13).
    scan_engine: str = "remix"
    # Learned (ε-bounded PLR) per-SSTable block index vs plain bisect.
    learned_index: bool = True
    # Compaction policy label resolved through repro.lsm.policy
    # ("size_tiered" | "leveled"); index tables under lazy schemes pair
    # naturally with "leveled" (every round major → dead-entry purge).
    compaction_policy: str = "size_tiered"
    # Ordered-map substrate under the memtable ("arraymap" | "skiplist");
    # behaviourally identical, arraymap is the fast default (DESIGN.md §16).
    memtable_map: str = "arraymap"
    # Index descriptors attached to this (base) table — the catalog keeps
    # a copy in the table descriptor, as BigInsights does (§7).
    indexes: Dict[str, "IndexDescriptor"] = dataclasses.field(default_factory=dict)

    @property
    def is_index(self) -> bool:
        return self.kind is TableKind.INDEX

    @property
    def has_indexes(self) -> bool:
        return bool(self.indexes)

    def attach_index(self, index: "IndexDescriptor") -> None:
        self.indexes[index.name] = index

    def detach_index(self, index_name: str) -> None:
        self.indexes.pop(index_name, None)

    def indexed_columns(self) -> List[str]:
        cols: List[str] = []
        for index in self.indexes.values():
            for col in index.columns:
                if col not in cols:
                    cols.append(col)
        return cols


def even_split_keys(prefix: bytes, num_regions: int,
                    domain: Optional[int] = None) -> List[bytes]:
    """Interior split points dividing a zero-padded numeric keyspace like
    ``item0000000042`` into ``num_regions`` even ranges.

    ``domain`` is the number of distinct keys (defaults to 10 digits' worth).
    """
    if num_regions < 2:
        return []
    domain = domain if domain is not None else 10 ** 10
    width = 10
    return [prefix + f"{(domain * i) // num_regions:0{width}d}".encode()
            for i in range(1, num_regions)]
