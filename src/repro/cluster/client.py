"""The client library.

Mirrors the HBase client plus the Diff-Index client-side component (§7):
partition-map caching with refresh-and-retry on stale routes, the
``getByIndex`` read API, and the session-consistency machinery — the
session cache lives here, in the client library, exactly as in §5.2.

All public methods are generator coroutines to be driven by the
simulator; :class:`repro.cluster.cluster.MiniCluster.run` provides the
blocking facade used by examples and tests.
"""

from __future__ import annotations

from typing import (Any, Dict, Generator, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING)

from repro.errors import (IndexBuildingError, NoSuchIndexError,
                          NoSuchRegionError, NoSuchTableError,
                          ServerDownError, SimulationError)
from repro.core import reader as reader_mod
from repro.core.encoding import IndexableValue
from repro.core.index import IndexDescriptor
from repro.core.reader import IndexHit
from repro.core.schemes import IndexScheme
from repro.core.session import Session
from repro.lsm.types import Cell, KeyRange
from repro.cluster.region import compose_cell_key
from repro.replication.config import LatencyBound, ReadMode
from repro.sim.kernel import Timeout
from repro.sim.scatter import scatter_gather

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import MiniCluster
    from repro.cluster.master import RegionInfo

__all__ = ["Client", "MutationBatch"]


class MutationBatch:
    """Builder for one batched write: ordered puts and deletes against a
    single table, applied with :meth:`Client.batch_mutate`.

    The batch preserves statement order per row (a later mutation of the
    same row gets a later timestamp server-side) and reports results in
    input order.  Sessions are not supported on the batch path — session
    writes need the old row back per mutation, which is what the single
    :meth:`Client.put` already does.
    """

    def __init__(self, table: str):
        self.table = table
        self.mutations: List[Tuple[str, bytes, Any]] = []

    def put(self, row: bytes, values: Dict[str, bytes]) -> "MutationBatch":
        """Queue an insert/update of ``values`` into ``row``."""
        self.mutations.append(("put", row, dict(values)))
        return self

    def delete(self, row: bytes, columns: Sequence[str]) -> "MutationBatch":
        """Queue a delete of ``columns`` from ``row``."""
        self.mutations.append(("del", row, list(columns)))
        return self

    def __len__(self) -> int:
        return len(self.mutations)


class Client:
    """A Diff-Index client: cached partition map with refresh-and-retry
    routing, CRUD, scatter-gather multiget/scan, ``getByIndex``, and
    session-consistency bookkeeping.  Routing is by key range and server
    name only — never region name — so splits and migrations are
    absorbed by an ordinary :meth:`refresh_layout`."""

    def __init__(self, cluster: "MiniCluster", name: str = "client",
                 max_route_retries: int = 60, retry_backoff_ms: float = 50.0,
                 max_fanout: int = 16, read_mode: Any = ReadMode.LEADER,
                 max_staleness_ms: Optional[float] = None):
        self.cluster = cluster
        self.name = name
        self.max_route_retries = max_route_retries
        self.retry_backoff_ms = retry_backoff_ms
        # Default read mode for `get`: one of the ReadMode strings or a
        # LatencyBound instance; overridable per call.
        self.read_mode = read_mode
        # Staleness bound for follower reads; a follower whose measured
        # lag exceeds it is inadmissible and the read falls back to the
        # leader, so the bound is a GUARANTEE, not a hint.
        self.max_staleness_ms = (cluster.replication.max_staleness_ms
                                 if max_staleness_ms is None
                                 else max_staleness_ms)
        # Measured staleness of the last get (0.0 for leader-served
        # reads): the observable half of the bounded-staleness contract.
        self.last_read_staleness_ms = 0.0
        self._follower_rr = 0
        # Bound on concurrent outbound RPCs for scatter paths (multi-region
        # scans, multigets, read-repair deletes) — the client-side analogue
        # of an HBase connection pool size.
        self.max_fanout = max_fanout
        # Escape hatch for apples-to-apples tests: False restores the
        # sequential one-RPC-per-row double-check (same counters & final
        # state, K round trips instead of ~1).
        self.parallel_double_check = True
        self._layout = cluster.master.snapshot_layout()
        # The master epoch this cache was copied at: cheap staleness probe
        # (`client.layout_epoch == master.routing_epoch`) without diffing
        # the partition map.
        self.layout_epoch = cluster.master.routing_epoch
        self._sessions: Dict[str, Session] = {}
        self.route_refreshes = 0

    # -- partition map -----------------------------------------------------------

    def refresh_layout(self) -> None:
        self._layout = self.cluster.master.snapshot_layout()
        self.layout_epoch = self.cluster.master.routing_epoch
        self.route_refreshes += 1

    def _locate(self, table: str, row: bytes) -> "RegionInfo":
        infos = self._layout.get(table)
        if infos is None:
            self.refresh_layout()
            infos = self._layout.get(table)
            if infos is None:
                raise NoSuchTableError(table)
        for info in infos:
            if info.key_range.contains(row):
                return info
        raise NoSuchRegionError(f"{table!r} has no region for {row!r}")

    def _routed(self, table: str, row: bytes, op_factory,
                ) -> Generator[Any, Any, Any]:
        """Route to the hosting server; on a stale route (dead server /
        moved region) refresh the map and retry with backoff — the client
        behaviour that rides out a region-server recovery."""
        attempts = 0
        while True:
            try:
                info = self._locate(table, row)
                server = self.cluster.servers[info.server_name]
                result = yield from self.cluster.network.call(
                    server, lambda: op_factory(server))
                return result
            except (ServerDownError, NoSuchRegionError):
                attempts += 1
                if attempts > self.max_route_retries:
                    raise
                self.refresh_layout()
                yield Timeout(self.retry_backoff_ms)

    # -- sessions ---------------------------------------------------------------

    def get_session(self, max_duration_ms: Optional[float] = None,
                    memory_limit_entries: int = 100_000) -> Session:
        kwargs = {"memory_limit_entries": memory_limit_entries}
        if max_duration_ms is not None:
            kwargs["max_duration_ms"] = max_duration_ms
        session = Session(self.cluster.sim.now(), **kwargs)
        self._sessions[session.session_id] = session
        return session

    def end_session(self, session: Session) -> None:
        session.end()
        self._sessions.pop(session.session_id, None)

    def _session_indexes(self, table: str) -> List[IndexDescriptor]:
        descriptor = self.cluster.descriptor(table)
        return [index for index in descriptor.indexes.values()
                if index.scheme is IndexScheme.ASYNC_SESSION]

    # -- CRUD -------------------------------------------------------------------

    def put(self, table: str, row: bytes, values: Dict[str, bytes],
            session: Optional[Session] = None,
            ) -> Generator[Any, Any, int]:
        """Insert/update columns of one row; returns the assigned ts."""
        want_old = bool(session is not None and not session.disabled
                        and self._session_indexes(table))
        if session is not None:
            session.touch(self.cluster.sim.now())
        ts, old = yield from self._routed(
            table, row,
            lambda server: server.handle_put(table, row, values,
                                             return_old=want_old))
        if want_old:
            old_values = {col: value
                          for col, (value, _ts) in (old or {}).items()}
            session.record_put(table, row, values, old_values, ts,
                               self._session_indexes(table))
        return ts

    def delete(self, table: str, row: bytes, columns: Sequence[str],
               session: Optional[Session] = None,
               ) -> Generator[Any, Any, int]:
        want_old = bool(session is not None and not session.disabled
                        and self._session_indexes(table))
        if session is not None:
            session.touch(self.cluster.sim.now())
        ts, old = yield from self._routed(
            table, row,
            lambda server: server.handle_delete(table, row, list(columns),
                                                return_old=want_old))
        if want_old:
            old_values = {col: value
                          for col, (value, _ts) in (old or {}).items()}
            session.record_delete(table, row, list(columns), old_values, ts,
                                  self._session_indexes(table))
        return ts

    def batch_put(self, table: str,
                  items: Sequence[Tuple[bytes, Dict[str, bytes]]],
                  ) -> Generator[Any, Any, List[int]]:
        """Batched put: apply ``(row, values)`` pairs via the multi_put
        RPC path; returns the assigned timestamps in input order."""
        batch = MutationBatch(table)
        for row, values in items:
            batch.put(row, values)
        result = yield from self.batch_mutate(batch)
        return result

    def batch_mutate(self, batch: MutationBatch,
                     ) -> Generator[Any, Any, List[int]]:
        """Apply a :class:`MutationBatch`: group the rows by hosting
        server from the cached layout, issue ONE ``handle_multi_put`` RPC
        per server (scatter), and return the per-row timestamps in input
        order.

        Retry semantics match :meth:`multi_get`'s routing-epoch story,
        at row granularity: rows a server answered ``("retry", ...)`` for
        (region moved or closing for a split), and rows whose whole group
        failed with a stale route or dead server, are re-routed after a
        layout refresh — already-applied rows are NOT re-sent.  A group
        re-sent after a mid-batch crash is safe: every row re-applies
        under a fresh (higher) timestamp, so convergence is unaffected
        (timestamp idempotence).
        """
        table = batch.table
        mutations = list(batch.mutations)
        if not mutations:
            return []
        results: List[Optional[int]] = [None] * len(mutations)
        pending = list(range(len(mutations)))
        attempts = 0

        def backoff():
            nonlocal attempts
            attempts += 1
            if attempts > self.max_route_retries:
                raise NoSuchRegionError(
                    f"batch to {table!r}: {len(pending)} rows still "
                    f"unroutable after {self.max_route_retries} retries")
            self.refresh_layout()

        while pending:
            try:
                groups: Dict[str, List[int]] = {}
                for i in pending:
                    info = self._locate(table, mutations[i][1])
                    groups.setdefault(info.server_name, []).append(i)
            except NoSuchRegionError:
                backoff()
                yield Timeout(self.retry_backoff_ms)
                continue

            def one_server(server_name: str):
                server = self.cluster.servers[server_name]
                sub = [mutations[i] for i in groups[server_name]]
                outcomes = yield from self.cluster.network.call(
                    server, lambda: server.handle_multi_put(table, sub))
                return outcomes

            # collect_errors: one group hitting a stale route must not
            # discard its siblings' already-applied results (fail-fast
            # would re-send rows that landed — harmless but wasteful).
            per_server = yield scatter_gather(
                self.cluster.sim,
                [lambda n=name: one_server(n) for name in sorted(groups)],
                max_fanout=self.max_fanout, collect_errors=True,
                name="multiput", metrics=self.cluster.metrics,
                site="multiput")

            retry: List[int] = []
            for server_name, outcomes in zip(sorted(groups), per_server):
                indices = groups[server_name]
                if isinstance(outcomes, (ServerDownError, NoSuchRegionError)):
                    retry.extend(indices)  # whole group re-routes
                    continue
                if isinstance(outcomes, BaseException):
                    raise outcomes
                for i, (status, payload) in zip(indices, outcomes):
                    if status == "ok":
                        results[i] = payload
                    else:          # ("retry", reason): only this row
                        retry.append(i)
            pending = sorted(retry)
            if pending:
                backoff()
                yield Timeout(self.retry_backoff_ms)
        return results

    def get(self, table: str, row: bytes,
            columns: Optional[List[str]] = None,
            max_ts: Optional[int] = None,
            session: Optional[Session] = None,
            read_mode: Any = None,
            ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        """Read one row.  ``read_mode`` (default: the client's) picks a
        point on the consistency/latency spectrum:

        * ``"leader"`` — strong: the region leader answers.
        * ``"follower"`` — bounded staleness: a follower answers iff its
          measured lag is within ``max_staleness_ms``, else the leader.
        * ``"quorum"`` — strong + anti-entropy: leader and followers are
          read together; the leader's answer wins and lagging followers
          are read-repaired toward it.
        * a :class:`LatencyBound` — fastest admissible replica via
          scatter: first answer within its staleness bound wins, the
          leader once the latency budget runs out.

        ``self.last_read_staleness_ms`` reports how stale the returned
        data may be (0.0 when the leader served it).
        """
        mode = self.read_mode if read_mode is None else read_mode
        if isinstance(mode, LatencyBound):
            result = yield from self._latency_bound_get(table, row, columns,
                                                        max_ts, mode)
        elif mode == ReadMode.FOLLOWER:
            result = yield from self._follower_get(table, row, columns,
                                                   max_ts)
        elif mode == ReadMode.QUORUM:
            result = yield from self._quorum_get(table, row, columns, max_ts)
        else:
            result = yield from self._routed(
                table, row,
                lambda server: server.handle_get(table, row, columns, max_ts))
            self.last_read_staleness_ms = 0.0
        if session is not None and not session.disabled:
            session.touch(self.cluster.sim.now())
            result = session.merge_base_row(table, row, result)
        return result

    # -- replicated read paths ---------------------------------------------------

    def _follower_targets(self, info: "RegionInfo") -> List["RegionInfo"]:
        """Live follower hosts for ``info``, rotated round-robin so a
        client spreads its follower reads over the replica set."""
        servers = [self.cluster.servers[name]
                   for name in info.replica_servers
                   if name in self.cluster.servers
                   and self.cluster.servers[name].alive]
        if not servers:
            return []
        start = self._follower_rr % len(servers)
        self._follower_rr += 1
        return servers[start:] + servers[:start]

    def _follower_get(self, table: str, row: bytes,
                      columns: Optional[List[str]],
                      max_ts: Optional[int],
                      ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        """Bounded-staleness read: try followers round-robin, accept the
        first whose advertised lag is within the bound; otherwise the
        leader serves (staleness 0 — the bound still holds)."""
        attempts = 0
        while True:
            try:
                info = self._locate(table, row)
                for follower in self._follower_targets(info):
                    try:
                        result, staleness = yield from self.cluster.network.call(
                            follower,
                            lambda f=follower: f.handle_replica_get(
                                table, info.region_name, row, columns,
                                max_ts),
                            source=self.name)
                    except (ServerDownError, NoSuchRegionError):
                        continue   # next follower; leader is the backstop
                    if staleness <= self.max_staleness_ms:
                        self.last_read_staleness_ms = staleness
                        return result
                leader = self.cluster.servers[info.server_name]
                result = yield from self.cluster.network.call(
                    leader,
                    lambda: leader.handle_get(table, row, columns, max_ts),
                    source=self.name)
                self.last_read_staleness_ms = 0.0
                return result
            except (ServerDownError, NoSuchRegionError):
                attempts += 1
                if attempts > self.max_route_retries:
                    raise
                self.refresh_layout()
                yield Timeout(self.retry_backoff_ms)

    def _quorum_get(self, table: str, row: bytes,
                    columns: Optional[List[str]],
                    max_ts: Optional[int],
                    ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        """Quorum read: scatter over the leader and every follower, wait
        for all (collect_errors), require a majority of the replica set to
        have answered.  The leader's answer is authoritative — naive
        newest-timestamp merging would resurrect tombstoned columns from
        a lagging follower — and followers whose answers lag it are
        read-repaired toward the leader's cells."""
        attempts = 0
        while True:
            try:
                info = self._locate(table, row)
                leader = self.cluster.servers[info.server_name]
                followers = [self.cluster.servers[name]
                             for name in info.replica_servers
                             if name in self.cluster.servers]

                def read_leader():
                    result = yield from self.cluster.network.call(
                        leader,
                        lambda: leader.handle_get(table, row, columns,
                                                  max_ts),
                        source=self.name)
                    return result

                def read_follower(follower):
                    result, _staleness = yield from self.cluster.network.call(
                        follower,
                        lambda: follower.handle_replica_get(
                            table, info.region_name, row, columns, max_ts),
                        source=self.name)
                    return result

                answers = yield scatter_gather(
                    self.cluster.sim,
                    [read_leader] + [lambda f=f: read_follower(f)
                                     for f in followers],
                    max_fanout=self.max_fanout, collect_errors=True,
                    name="quorum_get", metrics=self.cluster.metrics,
                    site="quorum_get")
                for answer in answers:
                    if (isinstance(answer, BaseException)
                            and not isinstance(answer, (ServerDownError,
                                                        NoSuchRegionError))):
                        raise answer
                if isinstance(answers[0], BaseException):
                    # No authoritative copy — surface the routing failure
                    # and retry after recovery promotes a follower.
                    raise answers[0]
                quorum = (1 + len(info.replica_servers)) // 2 + 1
                reachable = sum(1 for answer in answers
                                if not isinstance(answer, BaseException))
                if reachable < quorum:
                    raise ServerDownError(
                        f"quorum read of {table!r}/{row!r}: only "
                        f"{reachable}/{quorum} replicas answered")
                authoritative = answers[0]
                yield from self._repair_followers(
                    table, info.region_name, row, authoritative,
                    [(follower, answer) for follower, answer
                     in zip(followers, answers[1:])
                     if not isinstance(answer, BaseException)])
                self.last_read_staleness_ms = 0.0
                return authoritative
            except (ServerDownError, NoSuchRegionError):
                attempts += 1
                if attempts > self.max_route_retries:
                    raise
                self.refresh_layout()
                yield Timeout(self.retry_backoff_ms)

    def _repair_followers(self, table: str, region_name: str, row: bytes,
                          authoritative: Dict[str, Tuple[bytes, int]],
                          follower_answers,
                          ) -> Generator[Any, Any, None]:
        """Push the leader's newer cells to any follower whose quorum
        answer lagged them.  Repairs are point fixes: columns the
        follower has that the leader lacks are left to the ship loop
        (the delete record is on its way; inventing a tombstone here
        would need a timestamp we do not have)."""
        repairs = []
        for follower, answer in follower_answers:
            cells = tuple(
                Cell(compose_cell_key(row, column), ts, value)
                for column, (value, ts) in sorted(authoritative.items())
                if column not in answer or answer[column][1] < ts)
            if cells:
                repairs.append((follower, cells))
        if not repairs:
            return
        def repair_one(follower, cells):
            count = yield from self.cluster.network.call(
                follower,
                lambda: follower.handle_replica_repair(table, region_name,
                                                       cells),
                source=self.name)
            return count
        # collect_errors: a follower dying mid-repair must not fail the
        # read — its replica died with it.
        yield scatter_gather(
            self.cluster.sim,
            [lambda f=f, c=c: repair_one(f, c) for f, c in repairs],
            max_fanout=self.max_fanout, collect_errors=True,
            name="quorum_repair", metrics=self.cluster.metrics,
            site="quorum_repair")

    def _latency_bound_get(self, table: str, row: bytes,
                           columns: Optional[List[str]],
                           max_ts: Optional[int], bound: LatencyBound,
                           ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        """Latency-bound read: scatter to the leader AND every live
        follower at once, poll, and return the first admissible answer —
        a follower within ``bound.max_staleness_ms``, or the leader
        (always admissible).  When ``bound.budget_ms`` runs out with no
        admissible answer yet, block on the leader: the budget buys
        speculation, not weaker consistency."""
        attempts = 0
        while True:
            try:
                info = self._locate(table, row)
            except NoSuchRegionError:
                attempts += 1
                if attempts > self.max_route_retries:
                    raise
                self.refresh_layout()
                yield Timeout(self.retry_backoff_ms)
                continue
            leader = self.cluster.servers[info.server_name]
            leader_proc = self.cluster.sim.spawn(
                self.cluster.network.call(
                    leader,
                    lambda: leader.handle_get(table, row, columns, max_ts),
                    source=self.name),
                name=f"{self.name}/lb-leader")
            leader_proc._waited_on = True      # polled below
            follower_procs = []
            for name in info.replica_servers:
                follower = self.cluster.servers.get(name)
                if follower is None or not follower.alive:
                    continue
                proc = self.cluster.sim.spawn(
                    self.cluster.network.call(
                        follower,
                        lambda f=follower: f.handle_replica_get(
                            table, info.region_name, row, columns, max_ts),
                        source=self.name),
                    name=f"{self.name}/lb-{name}")
                proc._waited_on = True
                follower_procs.append(proc)
            deadline = self.cluster.sim.now() + bound.budget_ms
            while True:
                if (leader_proc.future.done()
                        and leader_proc.future.exception() is None):
                    self.last_read_staleness_ms = 0.0
                    return leader_proc.future.result()
                admissible = None
                for proc in follower_procs:
                    if not proc.future.done() or proc.future.exception():
                        continue
                    result, staleness = proc.future.result()
                    if staleness <= bound.max_staleness_ms and (
                            admissible is None or staleness < admissible[1]):
                        admissible = (result, staleness)
                if admissible is not None:
                    self.last_read_staleness_ms = admissible[1]
                    return admissible[0]
                still_running = [p for p in ([leader_proc] + follower_procs)
                                 if not p.future.done()]
                if not still_running or (self.cluster.sim.now() >= deadline
                                         and leader_proc.future.done()):
                    break
                if self.cluster.sim.now() >= deadline:
                    # Budget spent with nothing admissible: commit to the
                    # leader (strong) instead of polling on.
                    try:
                        result = yield leader_proc
                        self.last_read_staleness_ms = 0.0
                        return result
                    except (ServerDownError, NoSuchRegionError):
                        break
                yield Timeout(0.5)
            # Every speculative read failed (or came back inadmissible
            # and the leader errored): classic refresh-and-retry.
            attempts += 1
            if attempts > self.max_route_retries:
                leader_exc = (leader_proc.future.exception()
                              if leader_proc.future.done() else None)
                raise leader_exc or ServerDownError(
                    f"latency-bound read of {table!r}/{row!r}: no replica "
                    f"answered admissibly")
            self.refresh_layout()
            yield Timeout(self.retry_backoff_ms)

    def multi_get(self, table: str, rows: Sequence[bytes],
                  columns: Optional[List[str]] = None,
                  max_ts: Optional[int] = None,
                  session: Optional[Session] = None,
                  ) -> Generator[Any, Any, Dict[bytes, Dict[str, Tuple[bytes, int]]]]:
        """Parallel multiget: group ``rows`` by hosting server, issue one
        RPC per server (scatter), merge the per-server answers.

        K rows land in ~1 round trip instead of K; each listed row is
        still charged/counted as one base read server-side, so op counts
        are identical to K single gets.  Duplicate rows are deliberately
        NOT deduplicated for that same reason.
        """
        rows = list(rows)
        if not rows:
            return {}
        attempts = 0
        while True:
            try:
                groups: Dict[str, List[bytes]] = {}
                for row in rows:
                    info = self._locate(table, row)
                    groups.setdefault(info.server_name, []).append(row)

                def one_server(server_name: str):
                    server = self.cluster.servers[server_name]
                    batch = groups[server_name]
                    result = yield from self.cluster.network.call(
                        server, lambda: server.handle_multi_get(
                            table, batch, columns, max_ts))
                    return result

                per_server = yield scatter_gather(
                    self.cluster.sim,
                    [lambda n=name: one_server(n) for name in sorted(groups)],
                    max_fanout=self.max_fanout, name="multiget",
                    metrics=self.cluster.metrics, site="multiget")
                merged: Dict[bytes, Dict[str, Tuple[bytes, int]]] = {}
                for part in per_server:
                    merged.update(part)
                break
            except (ServerDownError, NoSuchRegionError):
                attempts += 1
                if attempts > self.max_route_retries:
                    raise
                self.refresh_layout()
                yield Timeout(self.retry_backoff_ms)
        if session is not None and not session.disabled:
            session.touch(self.cluster.sim.now())
            merged = {row: session.merge_base_row(table, row, data)
                      for row, data in merged.items()}
        return merged

    # -- scans ------------------------------------------------------------------

    def scan_table(self, table: str, key_range: KeyRange,
                   limit: Optional[int] = None, is_index: bool = False,
                   ) -> Generator[Any, Any, List[Cell]]:
        """Scan ``key_range`` across every region it overlaps, in key order."""
        attempts = 0
        while True:
            infos = self._layout.get(table)
            if infos is None:
                self.refresh_layout()
                infos = self._layout.get(table)
                if infos is None:
                    raise NoSuchTableError(table)
            try:
                return (yield from self._scan_attempt(
                    table, infos, key_range, limit, is_index))
            except (ServerDownError, NoSuchRegionError):
                attempts += 1
                if attempts > self.max_route_retries:
                    raise
                self.refresh_layout()
                yield Timeout(self.retry_backoff_ms)

    def _scan_attempt(self, table, infos, key_range, limit, is_index,
                      ) -> Generator[Any, Any, List[Cell]]:
        """Scatter the scan across every overlapping region in parallel.

        ``limit`` semantics: each region over-fetches up to the FULL limit
        (a later region cannot know how much earlier regions will return
        when they run concurrently), then the merge trims in key order.
        Regions are disjoint and spawned sorted by start key, so simple
        concatenation IS key order — asserted below, because the trim is
        only correct under that invariant.
        """
        overlapping = [info for info in
                       sorted(infos, key=lambda i: i.key_range.start)
                       if info.key_range.overlaps(key_range)]
        if not overlapping:
            return []

        def one_region(info):
            server = self.cluster.servers[info.server_name]
            clamped = key_range.clamp(info.key_range)
            if is_index:
                cells = yield from self.cluster.network.call(
                    server, lambda: server.handle_index_scan(table, clamped,
                                                             limit))
            else:
                cells = yield from self.cluster.network.call(
                    server, lambda: server.handle_scan(table, clamped, limit))
            return cells

        per_region = yield scatter_gather(
            self.cluster.sim,
            [lambda i=info: one_region(i) for info in overlapping],
            max_fanout=self.max_fanout, name="scan",
            metrics=self.cluster.metrics,
            site="scan_index" if is_index else "scan_base")

        out: List[Cell] = []
        for cells in per_region:
            if out and cells and cells[0].key < out[-1].key:
                raise SimulationError(
                    f"scan of {table!r}: merged region results out of key "
                    f"order ({cells[0].key!r} after {out[-1].key!r})")
            out.extend(cells)
        if limit is not None:
            out = out[:limit]
        return out

    # -- secondary-index reads ------------------------------------------------------

    def get_by_index(self, index_name: str,
                     equals: Optional[Sequence[IndexableValue]] = None,
                     low: Optional[IndexableValue] = None,
                     high: Optional[IndexableValue] = None,
                     limit: Optional[int] = None,
                     session: Optional[Session] = None,
                     ) -> Generator[Any, Any, List[IndexHit]]:
        """getByIndex: rowkeys (as :class:`IndexHit`) matching the predicate."""
        index = self.cluster.index_descriptor(index_name)
        if not index.is_readable:
            raise IndexBuildingError(
                f"index {index_name!r} is still building (online CREATE "
                f"has not reached ACTIVE)")
        hits = yield from reader_mod.get_by_index(
            self, index, equals=equals, low=low, high=high, limit=limit,
            session=session)
        return hits

    def get_rows_by_index(self, index_name: str,
                          equals: Optional[Sequence[IndexableValue]] = None,
                          low: Optional[IndexableValue] = None,
                          high: Optional[IndexableValue] = None,
                          limit: Optional[int] = None,
                          session: Optional[Session] = None,
                          ) -> Generator[Any, Any, List[Tuple[bytes, Dict]]]:
        """getByIndex plus fetching the matching base rows."""
        index = self.cluster.index_descriptor(index_name)
        hits = yield from self.get_by_index(index_name, equals=equals,
                                            low=low, high=high, limit=limit,
                                            session=session)
        if not hits:
            return []
        row_map = yield from self.multi_get(
            index.base_table, [hit.rowkey for hit in hits], session=session)
        rows = []
        for hit in hits:
            row_data = row_map.get(hit.rowkey, {})
            if row_data:
                rows.append((hit.rowkey, row_data))
        return rows

    def delete_index_entry(self, index_table: str, index_key: bytes,
                           ts: int) -> Generator[Any, Any, None]:
        """Used by the sync-insert read-repair path (Algorithm 2)."""
        yield from self._routed(
            index_table, index_key,
            lambda server: server.handle_index_delete(index_table, index_key,
                                                      ts, background=False))
