"""I/O operation counters — the instrumentation behind Table 2.

The paper's Table 2 accounts, per Diff-Index scheme and per action
(index update / index read), how many base puts, base reads, index puts
(including deletes) and index reads are issued, with asynchronous
operations bracketed.  Servers increment these counters at the point the
operation executes; the benchmark divides by the number of driver-level
actions to recover the per-action costs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["OpCounters", "Snapshot"]


@dataclasses.dataclass
class Snapshot:
    base_put: int = 0
    base_read: int = 0
    index_put: int = 0
    index_delete: int = 0
    index_read: int = 0
    # The same ops executed from the APS (bracketed "[ ]" in Table 2).
    async_base_read: int = 0
    async_index_put: int = 0
    async_index_delete: int = 0

    def minus(self, other: "Snapshot") -> "Snapshot":
        return Snapshot(**{
            field.name: getattr(self, field.name) - getattr(other, field.name)
            for field in dataclasses.fields(Snapshot)})

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class OpCounters:
    """Cluster-wide mutable counters with snapshot/diff support."""

    def __init__(self) -> None:
        self._counts = Snapshot()

    def incr(self, name: str, n: int = 1) -> None:
        setattr(self._counts, name, getattr(self._counts, name) + n)

    def snapshot(self) -> Snapshot:
        return dataclasses.replace(self._counts)

    def since(self, baseline: Snapshot) -> Snapshot:
        return self._counts.minus(baseline)

    def reset(self) -> None:
        self._counts = Snapshot()
