"""I/O operation counters — the instrumentation behind Table 2.

The paper's Table 2 accounts, per Diff-Index scheme and per action
(index update / index read), how many base puts, base reads, index puts
(including deletes) and index reads are issued, with asynchronous
operations bracketed.  Servers increment these counters at the point the
operation executes; the benchmark divides by the number of driver-level
actions to recover the per-action costs.

Since the observability subsystem landed, :class:`OpCounters` is a thin
façade over the :class:`~repro.obs.metrics.MetricsRegistry`: each op
kind is the registry counter ``table2_ops{op=<name>}``.  Table 2 and the
metrics snapshot therefore read the very same cells and cannot drift.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["OpCounters", "Snapshot"]


@dataclasses.dataclass
class Snapshot:
    base_put: int = 0
    base_read: int = 0
    index_put: int = 0
    index_delete: int = 0
    index_read: int = 0
    # The same ops executed from the APS (bracketed "[ ]" in Table 2).
    async_base_read: int = 0
    async_index_put: int = 0
    async_index_delete: int = 0

    def minus(self, other: "Snapshot") -> "Snapshot":
        return Snapshot(**{
            field.name: getattr(self, field.name) - getattr(other, field.name)
            for field in dataclasses.fields(Snapshot)})

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


_OP_NAMES = tuple(field.name for field in dataclasses.fields(Snapshot))


class OpCounters:
    """Cluster-wide mutable counters with snapshot/diff support."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {name: self.registry.counter("table2_ops", op=name)
                          for name in _OP_NAMES}

    def incr(self, name: str, n: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            raise ValueError(
                f"unknown op counter {name!r}; valid counters are: "
                f"{', '.join(_OP_NAMES)}")
        counter.inc(n)

    def snapshot(self) -> Snapshot:
        return Snapshot(**{name: counter.value
                           for name, counter in self._counters.items()})

    def since(self, baseline: Snapshot) -> Snapshot:
        return self.snapshot().minus(baseline)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
