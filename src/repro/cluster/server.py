"""The region server: request handling, AUQ/APS, flush & compaction loops.

This is the HBase RegionServer of §2.2 with the Diff-Index server-side
components of §7 attached: when a put arrives it is timestamped, written
to the WAL on SimHDFS, applied to the memtable, and then the registered
coprocessors run (synchronous index maintenance inline, asynchronous
enqueue into the AUQ).  Background processes per server:

* ``aps_worker`` × N — drain the AUQ (Algorithm 4);
* ``maintenance_loop`` — flush memtables over threshold, following the
  drain-AUQ-before-flush recovery protocol (Figure 5), then trigger
  compactions;
* ``heartbeat_loop`` — liveness signal for the coordinator.

Queueing model: each request occupies one *handler* slot for its whole
lifetime (HBase handler threads); random reads occupy the *disk*; WAL
appends serialise on the *log* device.  Saturating any of these produces
the latency growth in Figures 7/8 and the AUQ backlog of Figure 11.
"""

from __future__ import annotations

import dataclasses
from typing import (Any, Dict, Generator, List, Optional, Set, Tuple,
                    TYPE_CHECKING)

from repro.errors import (EncodingError, NoSuchRegionError, RpcError,
                          ServerDownError)
from repro.core.auq import IndexTask, aps_worker, maintain_indexes
from repro.core.coprocessor import IndexOpContext
from repro.core.encoding import decode_index_key
from repro.core.index import IndexState, extract_index_values
from repro.core.local import (is_reserved_key, local_scan_range,
                              plan_local_index_cells)
from repro.core.observers import build_observers
from repro.lsm.cache import BlockCache
from repro.lsm.tree import ReadStats
from repro.lsm.types import DELTA_MS, Cell, KeyRange
from repro.lsm.wal import WriteAheadLog
from repro.cluster.region import Region, compose_cell_key
from repro.cluster.table import TableDescriptor
from repro.replication.replica import FollowerReplica
from repro.replication.ship import replication_ship_loop
from repro.sim.kernel import Timeout
from repro.sim.resources import AsyncQueue, Gate, Latch, Resource, use
from repro.sim.scatter import FANOUT_BUCKETS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import MiniCluster

__all__ = ["ServerConfig", "RegionServer"]


@dataclasses.dataclass
class ServerConfig:
    num_handlers: int = 10
    num_aps_workers: int = 2
    aps_batch_size: int = 16
    # Bound on concurrent outbound index ops when one mutation fans its
    # PI/DI statement group out to several index regions at once.
    scatter_max_fanout: int = 16
    disk_parallelism: int = 2
    block_cache_bytes: int = 2 * 1024 * 1024
    maintenance_interval_ms: float = 50.0
    heartbeat_interval_ms: float = 500.0
    # Recovery-protocol knobs (ablations; see DESIGN.md §5).
    drain_auq_before_flush: bool = True
    # strict: the AUQ intake gate stays closed through the flush I/O, as in
    # Figure 5; if False it reopens right after the memtable is sealed
    # (safe: post-seal puts survive the WAL roll-forward).
    strict_flush_gate: bool = False
    # AUQ backpressure (§4's overflow fallback): at the high watermark an
    # enqueue degrades to synchronous apply instead of growing the queue
    # without bound.  None disables the guard (the Figure 11 backlog
    # reproduction sets it to None explicitly).
    auq_high_watermark: Optional[int] = 25_000


class RegionServer:
    def __init__(self, name: str, cluster: "MiniCluster",
                 config: Optional[ServerConfig] = None):
        self.name = name
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config or ServerConfig()
        self.alive = True

        self.regions: Dict[str, Region] = {}
        self.cache = BlockCache(self.config.block_cache_bytes)
        self.wal = WriteAheadLog(cluster.hdfs.create_wal(name))

        # Replication state (inert at replication_factor=1).  Follower
        # replicas hosted HERE, keyed by region name; the leader-side
        # acked ship watermark per (region, follower); and the latest
        # flush point per led region — (rolled_seqno, prepare_time),
        # recorded synchronously with each WAL roll-forward so it can be
        # piggybacked on ship batches race-free.
        self.follower_regions: Dict[str, FollowerReplica] = {}
        self.ship_state: Dict[Tuple[str, str], int] = {}
        self.ship_inflight: Set[Tuple[str, str]] = set()
        self.flush_points: Dict[str, Tuple[int, float]] = {}

        # Devices.  Index-table ops get their own handler pool: a put
        # handler blocks on remote index puts, so sharing one pool would
        # deadlock two servers whose put handlers wait on each other — the
        # cross-coprocessor-RPC hazard HBase avoids with priority queues.
        self.handlers = Resource(self.sim, self.config.num_handlers,
                                 name=f"{name}/handlers")
        self.index_handlers = Resource(self.sim, self.config.num_handlers,
                                       name=f"{name}/index-handlers")
        self.disk = Resource(self.sim, self.config.disk_parallelism,
                             name=f"{name}/disk")
        self.log_device = Resource(self.sim, 1, name=f"{name}/log")

        # Diff-Index server-side state.
        self.auq = AsyncQueue(self.sim, name=f"{name}/auq")
        self.auq_gate = Gate(self.sim, name=f"{name}/auq-gate")
        # Operator toggle: closing this gate suspends APS processing while
        # the queue keeps accepting work — used by tests and demos to hold
        # a staleness window open deterministically.
        self.aps_gate = Gate(self.sim, name=f"{name}/aps-gate")
        self.auq_inflight = Latch(self.sim, name=f"{name}/auq-inflight")
        self.put_inflight = Latch(self.sim, name=f"{name}/put-inflight")
        self.op_context = IndexOpContext(self)
        self.staleness = cluster.staleness
        self.aps_retries = 0

        # Observability probes (repro.obs): handles are resolved once here
        # so the hot paths pay a plain attribute access, not a registry
        # lookup.  The AUQ depth gauge and lag histogram are the live
        # Figure 11 instrumentation.
        metrics = cluster.metrics
        self.tracer = cluster.tracer
        self.obs_auq_depth = metrics.gauge("auq_depth", server=name)
        self.obs_auq_lag = metrics.histogram("auq_lag_ms", server=name)
        self.obs_auq_lag_last = metrics.gauge("auq_lag_last_ms", server=name)
        self.obs_aps_retries = metrics.counter("aps_retries", server=name)
        self.obs_degraded = metrics.counter("degraded_tasks", server=name)
        self.obs_auq_degraded = metrics.counter("auq_degraded_total",
                                                server=name)
        self.obs_flush_gate_wait = metrics.histogram("flush_gate_wait_ms",
                                                     server=name)
        # Group-commit width: how many mutations shared one WAL write —
        # the amortization the batched foreground path (and the APS's
        # batched deliveries) buys is read straight off this histogram.
        self.obs_wal_group = metrics.histogram("wal_group_commit_size",
                                               bounds=FANOUT_BUCKETS,
                                               server=name)
        # Block-cache visibility: hit/miss counters tick inline with each
        # access; the derived hit_rate gauge refreshes every maintenance
        # tick (cheap, deterministic, fresh enough for bench snapshots).
        self.cache.bind_metrics(metrics, server=name)
        self.obs_cache_hit_rate = metrics.gauge("block_cache_hit_rate",
                                                server=name)
        # Replication probes: follower-read and quorum-repair counters
        # resolve once here; the per-region replication_lag_ms histogram
        # is looked up at observe time (ship cadence, not a hot path).
        self.obs_follower_reads = metrics.counter("follower_reads_total",
                                                  server=name)
        self.obs_quorum_repairs = metrics.counter("quorum_repairs_total",
                                                  server=name)
        # Index entries a major compaction proved dead against the base
        # table (lazy schemes' GC; DESIGN.md §14).
        self.obs_dead_purged = metrics.counter(
            "compaction_dead_entries_purged_total", server=name)

        # Monotonic per-server timestamps: System.currentTimeMillis() is
        # non-decreasing; we additionally break ties so that two writes to
        # the same row (serialised by its row lock) never share a ts,
        # keeping the δ arithmetic of §4.3 exact.
        self._last_ts = 0

        self.last_heartbeat = self.sim.now()
        self.flushes_completed = 0
        self.compactions_completed = 0
        self.flush_gate_wait_ms = 0.0    # total put-path delay from drains

        self._background: List[Any] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegionServer {self.name} regions={len(self.regions)}>"

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for worker_id in range(self.config.num_aps_workers):
            self._background.append(self.sim.spawn(
                aps_worker(self, worker_id), name=f"{self.name}/aps{worker_id}"))
        self._background.append(self.sim.spawn(
            self._maintenance_loop(), name=f"{self.name}/maintenance"))
        self._background.append(self.sim.spawn(
            self._heartbeat_loop(), name=f"{self.name}/heartbeat"))
        if self.cluster.replication.enabled:
            # Spawned only when replication is on: single-copy runs stay
            # event-for-event identical to the pre-replication cluster.
            self._background.append(self.sim.spawn(
                replication_ship_loop(self), name=f"{self.name}/ship"))

    def kill(self) -> None:
        """Crash: memtables and AUQ contents die with the process; the WAL
        and flushed store files survive in SimHDFS."""
        self.alive = False
        # Release APS workers parked on the queue so they observe death.
        for _ in range(self.config.num_aps_workers):
            self.auq.put(None)

    # -- region hosting -------------------------------------------------------

    def add_region(self, region: Region) -> None:
        region.tree.cache = self.cache
        region.tree.bind_metrics(self.cluster.metrics, server=self.name)
        self.regions[region.name] = region

    def remove_region(self, region_name: str) -> Optional[Region]:
        self.flush_points.pop(region_name, None)
        for key in [k for k in self.ship_state if k[0] == region_name]:
            del self.ship_state[key]
        return self.regions.pop(region_name, None)

    def add_follower(self, replica: FollowerReplica) -> None:
        """Host a follower replica: same cache/metrics binding as a led
        region, but it lives in ``follower_regions`` — invisible to the
        write path, the maintenance loop and ``region_for`` routing."""
        replica.region.tree.cache = self.cache
        replica.region.tree.bind_metrics(self.cluster.metrics,
                                         server=self.name)
        self.follower_regions[replica.region_name] = replica

    def remove_follower(self, region_name: str) -> Optional[FollowerReplica]:
        return self.follower_regions.pop(region_name, None)

    def handle_split_close(self, table: str, region_name: str,
                           ) -> Generator[Any, Any, None]:
        """Close a region for a split or migration: stop serving it, wait
        out in-flight row work, then flush and roll the WAL so the durable
        store files are the COMPLETE region image.

        Idempotent: a region this server no longer hosts reports success —
        a previous close attempt (possibly by a runner that crashed before
        committing) already did the work, and the resumed runner must be
        able to proceed to the commit.

        The region stays hosted and readable while ``closing`` is set:
        only writes are rejected (stale-route retry).  Reads MUST keep
        serving — the drain inside :meth:`flush_region` needs the APS to
        plan base reads against this very region, and removing it outright
        would deadlock the close against its own drain."""
        self._check_alive()
        region = self.regions.get(region_name)
        if region is None or region.table.name != table:
            return
        region.closing = True
        try:
            while region.locks.held or region.flushing:
                yield Timeout(1.0)
            yield from self.flush_region(region)
        except BaseException:
            region.closing = False   # reopen rather than strand the range
            raise

    def region_for(self, table: str, row: bytes) -> Optional[Region]:
        for region in self.regions.values():
            if region.table.name == table and region.contains_row(row):
                return region
        return None

    def _require_region(self, table: str, row: bytes) -> Region:
        region = self.region_for(table, row)
        if region is None:
            raise NoSuchRegionError(
                f"{self.name} hosts no region of {table!r} for {row!r}")
        return region

    def _require_open_region(self, table: str, row: bytes) -> Region:
        """Like :meth:`_require_region` but for WRITE paths: a region that
        is closing for a split/migration rejects new writes so the close's
        lock-drain terminates; the caller retries after a layout refresh."""
        region = self._require_region(table, row)
        if region.closing:
            raise NoSuchRegionError(
                f"region {region.name} on {self.name} is closing "
                f"for a split/migration")
        return region

    def _check_alive(self) -> None:
        if not self.alive:
            raise ServerDownError(f"{self.name} is down")

    # -- timestamps ------------------------------------------------------------

    def assign_timestamp(self) -> int:
        # Per-server monotonic milliseconds, like currentTimeMillis() with
        # same-ms ties broken locally.  (A cluster-WIDE tie-break would be
        # wrong: above ~1000 puts/s it would outrun the wall clock and
        # distort every T2−T1 staleness measurement.)
        ts = max(int(self.sim.now()), self._last_ts + 1)
        self._last_ts = ts
        if ts > self.cluster.ts_floor:
            self.cluster.ts_floor = ts
        return ts

    def assign_repair_timestamp(self) -> int:
        """A timestamp strictly above every timestamp ever assigned in the
        cluster — used by repair inserts, which must out-rank a tombstone
        another server may have written at its own 'future' time."""
        ts = max(int(self.sim.now()), self._last_ts + 1,
                 self.cluster.ts_floor + 1)
        self._last_ts = ts
        self.cluster.ts_floor = ts
        return ts

    # -- cost charging -----------------------------------------------------------

    def charge_read(self, stats: ReadStats) -> Generator[Any, Any, None]:
        """Convert a read's ReadStats into simulated service time."""
        model = self.cluster.model
        if stats.blocks_from_disk:
            yield from use(self.disk,
                           stats.blocks_from_disk * model._v(model.disk_read_ms))
        cheap = model.read_cost(0, stats.blocks_from_cache, stats.bloom_probes,
                                stats.memtable_probes)
        if cheap > 0:
            yield Timeout(cheap)

    def local_read_row(self, region: Region, row: bytes,
                       columns: Optional[List[str]], max_ts: Optional[int],
                       background: bool,
                       ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        region.note_read()
        stats = ReadStats()
        result = region.read_row(row, columns, max_ts=max_ts, stats=stats)
        yield from self.charge_read(stats)
        counters = self.cluster.counters
        counters.incr("async_base_read" if background else "base_read")
        return result

    # ======================================================================
    # RPC handlers (run inside a handler slot; invoked via Network.call)
    # ======================================================================

    def _with_handler(self, body, pool: Optional[Resource] = None,
                      ) -> Generator[Any, Any, Any]:
        self._check_alive()
        pool = pool or self.handlers
        yield pool.acquire()
        try:
            yield Timeout(self.cluster.model._v(self.cluster.model.rpc_cpu_ms))
            result = yield from body()
            return result
        finally:
            pool.release()

    # -- base-table writes -------------------------------------------------------

    @staticmethod
    def _observer_hook(hook, span, *args) -> Generator[Any, Any, None]:
        """Invoke a coprocessor hook, handing it the put/delete root span.

        Third-party observers written before the observability subsystem
        take no ``span`` parameter; a signature mismatch surfaces at
        generator *creation* (before any body code runs), so falling back
        on TypeError here cannot swallow an error from the hook itself.
        """
        try:
            gen = hook(*args, span=span)
        except TypeError:
            gen = hook(*args)
        yield from gen

    @staticmethod
    def _check_row_key(row: bytes) -> None:
        """Row keys must stay out of the reserved (leading-0x00) keyspace
        that hosts local-index entries, and must not be empty."""
        if not row:
            from repro.errors import ClusterError
            raise ClusterError("empty row key")
        if row.startswith(b"\x00"):
            from repro.errors import ClusterError
            raise ClusterError(
                f"row keys must not start with 0x00 (reserved): {row!r}")

    def _gate_entry(self, table: str) -> Generator[Any, Any, bool]:
        """Wait out a pre-flush drain BEFORE taking a handler slot (waiting
        inside the slot would let gated puts starve the APS deliveries the
        drain itself is waiting for).  Returns True when the caller was
        admitted and must decrement ``put_inflight`` when done."""
        if not self.cluster.descriptor(table).has_indexes:
            return False
        if not self.auq_gate.is_open:
            wait_start = self.sim.now()
            yield self.auq_gate.wait_open()
            waited = self.sim.now() - wait_start
            self.flush_gate_wait_ms += waited
            self.obs_flush_gate_wait.observe(waited)
        self.put_inflight.increment()
        return True

    def handle_put(self, table: str, row: bytes, values: Dict[str, bytes],
                   return_old: bool = False,
                   ) -> Generator[Any, Any, Tuple[int, Optional[Dict]]]:
        """The write path: WAL → memtable → coprocessors → ack (§2.2, Alg. 1/3).

        Returns ``(ts, old_values)``; ``old_values`` is only read (and only
        for the indexed columns) when ``return_old`` — the extra base read
        session consistency pays for (§5.2).
        """
        self._check_row_key(row)
        gated = yield from self._gate_entry(table)
        try:
            return (yield from self._with_handler(
                lambda: self._put_body(table, row, values, return_old)))
        finally:
            if gated:
                self.put_inflight.decrement()

    def _put_body(self, table: str, row: bytes, values: Dict[str, bytes],
                  return_old: bool,
                  ) -> Generator[Any, Any, Tuple[int, Optional[Dict]]]:
        region = self._require_open_region(table, row)
        region.note_write()
        descriptor = region.table
        model = self.cluster.model
        yield region.locks.acquire(row)
        span = self.tracer.start("put", server=self.name, table=table)
        try:
            ts = self.assign_timestamp()

            old_values: Optional[Dict[str, Tuple[bytes, int]]] = None
            if return_old:
                columns = descriptor.indexed_columns()
                if columns:
                    old_values = yield from self.local_read_row(
                        region, row, columns, max_ts=ts - 1, background=False)

            cells = tuple(Cell(compose_cell_key(row, col), ts, value)
                          for col, value in sorted(values.items()))
            local_indexes = [ix for ix in descriptor.indexes.values()
                             if ix.is_local]
            if local_indexes:
                # Local-index cells ride in the SAME WAL record as the base
                # put: the index is crash-atomic with its row (§3.1 —
                # co-location pays off here).
                extra = yield from plan_local_index_cells(
                    self, region, row, values, ts, local_indexes)
                cells = cells + tuple(extra)
            record = self.wal.append(region.name, table, cells,
                                     indexed=descriptor.has_indexes)
            wal_span = self.tracer.start("wal_append", parent=span,
                                         server=self.name)
            # ``use(self.log_device, ...)`` inlined: the put path is hot
            # enough that the extra generator frame per write shows up.
            log_device = self.log_device
            wal_cost = model.wal_append()
            yield log_device.acquire()
            try:
                if wal_cost > 0:
                    yield Timeout(wal_cost)
            finally:
                log_device.release()
            wal_span.end()
            region.tree.add_many(cells, seqno=record.seqno)
            yield Timeout(model.memtable_op() * len(cells))
            self.cluster.counters.incr("base_put")

            for observer in self.cluster.observers_for(table):
                yield from self._observer_hook(
                    observer.post_put, span,
                    self, descriptor, row, values, ts)
            return ts, old_values
        finally:
            span.end()
            region.locks.release(row)

    def handle_delete(self, table: str, row: bytes, columns: List[str],
                      return_old: bool = False,
                      ) -> Generator[Any, Any, Tuple[int, Optional[Dict]]]:
        """Row delete: a tombstone per column plus index maintenance —
        "deletion is handled similarly as put in LSM" (§4.3)."""
        self._check_row_key(row)
        gated = yield from self._gate_entry(table)
        try:
            return (yield from self._with_handler(
                lambda: self._delete_body(table, row, columns, return_old)))
        finally:
            if gated:
                self.put_inflight.decrement()

    def _delete_body(self, table: str, row: bytes, columns: List[str],
                     return_old: bool,
                     ) -> Generator[Any, Any, Tuple[int, Optional[Dict]]]:
        region = self._require_open_region(table, row)
        region.note_write()
        descriptor = region.table
        model = self.cluster.model
        yield region.locks.acquire(row)
        span = self.tracer.start("delete", server=self.name, table=table)
        try:
            ts = self.assign_timestamp()
            old_values: Optional[Dict[str, Tuple[bytes, int]]] = None
            if return_old:
                indexed = descriptor.indexed_columns()
                if indexed:
                    old_values = yield from self.local_read_row(
                        region, row, indexed, max_ts=ts - 1, background=False)
            cells = tuple(Cell(compose_cell_key(row, col), ts, None)
                          for col in sorted(columns))
            local_indexes = [ix for ix in descriptor.indexes.values()
                             if ix.is_local]
            if local_indexes:
                extra = yield from plan_local_index_cells(
                    self, region, row, None, ts, local_indexes)
                cells = cells + tuple(extra)
            record = self.wal.append(region.name, table, cells,
                                     indexed=descriptor.has_indexes)
            wal_span = self.tracer.start("wal_append", parent=span,
                                         server=self.name)
            # ``use(self.log_device, ...)`` inlined: the put path is hot
            # enough that the extra generator frame per write shows up.
            log_device = self.log_device
            wal_cost = model.wal_append()
            yield log_device.acquire()
            try:
                if wal_cost > 0:
                    yield Timeout(wal_cost)
            finally:
                log_device.release()
            wal_span.end()
            region.tree.add_many(cells, seqno=record.seqno)
            yield Timeout(model.memtable_op() * len(cells))
            self.cluster.counters.incr("base_put")

            for observer in self.cluster.observers_for(table):
                yield from self._observer_hook(
                    observer.post_delete, span, self, descriptor, row, ts)
            return ts, old_values
        finally:
            span.end()
            region.locks.release(row)

    # -- batched base-table writes ---------------------------------------------

    def handle_multi_put(self, table: str,
                         mutations: List[Tuple[str, bytes, Any]],
                         ) -> Generator[Any, Any, List[Tuple[str, Any]]]:
        """Batched write path: apply several row mutations under ONE
        handler slot and ONE group-committed WAL write (§8.2's batching,
        foregrounded).

        ``mutations`` is a list of ``("put", row, values_dict)`` or
        ``("del", row, columns_list)``.  Returns a result per mutation, in
        input order: ``("ok", ts)`` for applied rows, ``("retry", reason)``
        for rows this server cannot serve (region moved, or closing for a
        split) — a partial batch never fails the whole RPC, the client
        re-routes just the rejected rows.

        Lock-ordering rule: row locks are taken in sorted key order (each
        row from its own region's lock table) and released in reverse, so
        two concurrent batches with overlapping row sets cannot deadlock.
        """
        for mutation in mutations:
            self._check_row_key(mutation[1])
        gated = yield from self._gate_entry(table)
        try:
            return (yield from self._with_handler(
                lambda: self._multi_put_body(table, mutations)))
        finally:
            if gated:
                self.put_inflight.decrement()

    def _multi_put_body(self, table: str,
                        mutations: List[Tuple[str, bytes, Any]],
                        ) -> Generator[Any, Any, List[Tuple[str, Any]]]:
        model = self.cluster.model
        descriptor = self.cluster.descriptor(table)
        results: List[Optional[Tuple[str, Any]]] = [None] * len(mutations)

        # Admission: route every row to a hosted OPEN region; rejected
        # rows answer ("retry", ...) individually instead of poisoning
        # their batch-mates.
        admitted: List[Tuple[int, str, bytes, Any, Region]] = []
        for i, (kind, row, payload) in enumerate(mutations):
            try:
                region = self._require_open_region(table, row)
            except NoSuchRegionError as exc:
                results[i] = ("retry", str(exc))
                continue
            admitted.append((i, kind, row, payload, region))
        if not admitted:
            return results

        local_indexes = [ix for ix in descriptor.indexes.values()
                         if ix.is_local]
        # Wave split: local-index planning reads the old row at ts−δ, so
        # a duplicate row inside one batch must see its earlier mutation
        # already in the memtable — each wave holds distinct rows and gets
        # its own group commit.  Without local indexes no such read
        # happens and the whole batch is one wave.
        waves: List[List[Tuple[int, str, bytes, Any, Region]]]
        if local_indexes:
            waves = []
            current: List[Tuple[int, str, bytes, Any, Region]] = []
            seen: set = set()
            for item in admitted:
                if item[2] in seen:
                    waves.append(current)
                    current, seen = [], set()
                current.append(item)
                seen.add(item[2])
            if current:
                waves.append(current)
        else:
            waves = [admitted]

        # Row locks: sorted unique key order, duplicates share one
        # acquisition, reverse-order release (see handle_multi_put).
        row_region: Dict[bytes, Region] = {}
        for item in admitted:
            row_region.setdefault(item[2], item[4])
        locked: List[bytes] = []
        span = self.tracer.start("multi_put", server=self.name, table=table,
                                 rows=len(mutations))
        try:
            for row in sorted(row_region):
                yield row_region[row].locks.acquire(row)
                locked.append(row)

            # (kind, row, values-or-None, ts) for the observer batch hook.
            batch_rows: List[Tuple[str, bytes, Optional[Dict[str, bytes]],
                                   int]] = []
            for wave in waves:
                planned = []     # (region, cells) aligned with the wave
                wal_batch = []   # append_batch input
                total_cells = 0
                for i, kind, row, payload, region in wave:
                    region.note_write()
                    ts = self.assign_timestamp()
                    if kind == "put":
                        cells = tuple(
                            Cell(compose_cell_key(row, col), ts, value)
                            for col, value in sorted(payload.items()))
                        new_values: Optional[Dict[str, bytes]] = payload
                    else:
                        cells = tuple(
                            Cell(compose_cell_key(row, col), ts, None)
                            for col in sorted(payload))
                        new_values = None
                    if local_indexes:
                        # Same-record local index cells: crash-atomic with
                        # the base row, exactly as the single-put path.
                        extra = yield from plan_local_index_cells(
                            self, region, row, new_values, ts, local_indexes)
                        cells = cells + tuple(extra)
                    planned.append((region, cells))
                    wal_batch.append((region.name, table, cells,
                                      descriptor.has_indexes))
                    total_cells += len(cells)
                    batch_rows.append((kind, row, new_values, ts))
                    results[i] = ("ok", ts)

                # Group commit: every mutation keeps its own WAL record
                # and seqno; the log device is charged ONCE per wave.
                records = self.wal.append_batch(wal_batch)
                wal_span = self.tracer.start("wal_group_append", parent=span,
                                             server=self.name,
                                             records=len(records))
                yield from use(self.log_device,
                               model.wal_group_append(len(records)))
                wal_span.end()
                self.obs_wal_group.observe(len(records))
                for (region, cells), record in zip(planned, records):
                    region.tree.add_many(cells, seqno=record.seqno)
                yield Timeout(model.memtable_op() * total_cells)
            self.cluster.counters.incr("base_put", len(admitted))

            # Index maintenance over the WHOLE batch (all waves): the
            # coalesced hooks plan ops per row timestamp, so wave
            # boundaries do not matter here.
            for observer in self.cluster.observers_for(table):
                yield from self._observer_batch(observer, span,
                                                descriptor, batch_rows)
            return results
        finally:
            span.end()
            for row in reversed(locked):
                row_region[row].locks.release(row)

    def _observer_batch(self, observer, span, descriptor,
                        batch_rows) -> Generator[Any, Any, None]:
        """Dispatch one batch of mutations to a coprocessor: the batch
        hook when the observer has one, else the per-row hooks — so
        third-party observers written against the single-put interface
        keep working under multi_put."""
        hook = getattr(observer, "post_batch", None)
        if hook is not None:
            yield from self._observer_hook(hook, span,
                                           self, descriptor, batch_rows)
            return
        for kind, row, values, ts in batch_rows:
            if kind == "put":
                yield from self._observer_hook(
                    observer.post_put, span, self, descriptor, row, values, ts)
            else:
                yield from self._observer_hook(
                    observer.post_delete, span, self, descriptor, row, ts)

    # -- base-table reads -----------------------------------------------------

    def handle_get(self, table: str, row: bytes,
                   columns: Optional[List[str]] = None,
                   max_ts: Optional[int] = None, background: bool = False,
                   ) -> Generator[Any, Any, Dict[str, Tuple[bytes, int]]]:
        return (yield from self._with_handler(
            lambda: self._get_body(table, row, columns, max_ts, background)))

    def _get_body(self, table, row, columns, max_ts, background):
        region = self._require_region(table, row)
        result = yield from self.local_read_row(region, row, columns, max_ts,
                                                background=background)
        return result

    def handle_multi_get(self, table: str, rows: List[bytes],
                         columns: Optional[List[str]] = None,
                         max_ts: Optional[int] = None,
                         background: bool = False,
                         ) -> Generator[Any, Any, Dict[bytes, Dict]]:
        """Multiget: read several rows under ONE handler slot / round trip
        — the HBase ``multi`` RPC the parallel double-check scatters per
        server.  Each listed row is charged and counted as one base read
        (duplicates included), so Table 2 op counts match the equivalent
        sequence of single gets exactly."""
        return (yield from self._with_handler(
            lambda: self._multi_get_body(table, rows, columns, max_ts,
                                         background)))

    def _multi_get_body(self, table, rows, columns, max_ts, background):
        out: Dict[bytes, Dict[str, Tuple[bytes, int]]] = {}
        for row in rows:
            region = self._require_region(table, row)
            out[row] = yield from self.local_read_row(
                region, row, columns, max_ts, background=background)
        return out

    def handle_scan(self, table: str, key_range: KeyRange,
                    limit: Optional[int] = None,
                    max_ts: Optional[int] = None,
                    ) -> Generator[Any, Any, List[Cell]]:
        """Range scan over one region's slice of ``key_range``.

        ``max_ts`` bounds visibility to cells at or below that timestamp —
        the snapshot scan the online backfill uses so rows written after
        the DDL snapshot (already dual-written) are not double-handled."""
        return (yield from self._with_handler(
            lambda: self._scan_body(table, key_range, limit, max_ts)))

    def _scan_body(self, table, key_range, limit, max_ts=None):
        regions = [r for r in self.regions.values()
                   if r.table.name == table
                   and r.key_range.overlaps(key_range)]
        if not regions:
            raise NoSuchRegionError(
                f"{self.name} hosts no region of {table!r} in {key_range!r}")
        regions.sort(key=lambda r: r.key_range.start)
        self._check_scan_coverage(table, regions, key_range)
        out: List[Cell] = []
        for region in regions:
            region.note_read()
            stats = ReadStats()
            cells = region.scan_rows(key_range, limit=limit, max_ts=max_ts,
                                     stats=stats)
            yield Timeout(self.cluster.model._v(
                self.cluster.model.scan_open_ms))
            yield from self.charge_read(stats)
            out.extend(cells)
            if limit is not None and len(out) >= limit:
                out = out[:limit]
                break
        if not self.cluster.descriptor(table).is_index:
            self.cluster.counters.incr("base_read")
        return out

    def _check_scan_coverage(self, table: str, regions: List[Region],
                             key_range: KeyRange) -> None:
        """The hosted regions (sorted by start) must cover the WHOLE scan
        range: after a split or migration a slice may have moved to another
        server, and a silently partial result would corrupt the caller's
        merge.  Raising NoSuchRegionError instead routes the caller into
        its refresh-and-retry path."""
        cursor = key_range.start
        for region in regions:
            if region.key_range.start > cursor:
                break
            if region.key_range.end is None:
                return
            cursor = max(cursor, region.key_range.end)
            if key_range.end is not None and cursor >= key_range.end:
                return
        raise NoSuchRegionError(
            f"{self.name} no longer hosts all of {table!r} {key_range!r} "
            f"(covered up to {cursor!r})")

    # -- index-table operations ---------------------------------------------------

    def handle_index_put(self, table: str, index_key: bytes, ts: int,
                         background: bool = False,
                         ) -> Generator[Any, Any, None]:
        yield from self._with_handler(
            lambda: self._index_put_body(table, index_key, ts, background),
            pool=self.index_handlers)

    def _index_put_body(self, table, index_key, ts, background):
        region = self._require_open_region(table, index_key)
        region.note_write()
        model = self.cluster.model
        record = self.wal.append(region.name, table,
                                 (Cell(index_key, ts, b""),))
        yield from use(self.log_device, model.wal_append())
        region.tree.add(Cell(index_key, ts, b""), seqno=record.seqno)
        yield Timeout(model.memtable_op())
        self.cluster.counters.incr(
            "async_index_put" if background else "index_put")

    def handle_index_delete(self, table: str, index_key: bytes, ts: int,
                            background: bool = False,
                            ) -> Generator[Any, Any, None]:
        yield from self._with_handler(
            lambda: self._index_delete_body(table, index_key, ts, background),
            pool=self.index_handlers)

    def _index_delete_body(self, table, index_key, ts, background):
        region = self._require_open_region(table, index_key)
        region.note_write()
        model = self.cluster.model
        record = self.wal.append(region.name, table,
                                 (Cell(index_key, ts, None),))
        yield from use(self.log_device, model.wal_append())
        region.tree.add(Cell(index_key, ts, None), seqno=record.seqno)
        yield Timeout(model.memtable_op())
        self.cluster.counters.incr(
            "async_index_delete" if background else "index_delete")

    def handle_index_ops(self, ops: List[Tuple[str, str, bytes, int]],
                         background: bool = True,
                         ) -> Generator[Any, Any, None]:
        """Apply a batch of index puts/deletes under one handler slot and
        one group-committed WAL write (APS batching, and the coalesced
        index maintenance of the batched foreground path)."""
        # Pool selection mirrors the single-op handlers: background
        # (APS) deliveries compete for the REGULAR handler pool — the
        # "background AUQ competes for system resource" effect of §8.2 —
        # which is deadlock-safe because the APS holds no handler while
        # calling out.  Foreground (sync-scheme) deliveries come from a
        # put/multi_put handler that DOES hold its own slot, so they land
        # on the target's dedicated index pool, exactly like
        # handle_index_put/delete.
        pool = self.handlers if background else self.index_handlers
        yield from self._with_handler(
            lambda: self._index_ops_body(ops, background), pool=pool)

    def _index_ops_body(self, ops, background):
        model = self.cluster.model
        counters = self.cluster.counters
        # Plan the whole batch FIRST, then append it as one group commit:
        # a mid-batch routing error (region split/moved under us) leaves
        # nothing applied, so the caller's whole-delivery retry cannot
        # double-count — and the counters below only ever see ops that
        # actually landed.
        planned: List[Tuple[Region, str, Cell]] = []
        puts = dels = 0
        for op in ops:
            kind, table, key, ts = op[0], op[1], op[2], op[3]
            if len(op) > 4:
                # Epoch-tagged op (APS / DDL backfill): drop it if the
                # target index was dropped — or dropped and recreated —
                # since the op was planned.  Applying it anyway would
                # resurrect a pre-drop image in the new index.
                live = self.cluster.index_by_table.get(table)
                if live is None or live.created_epoch != op[4]:
                    continue
            region = self._require_open_region(table, key)
            value = b"" if kind == "put" else None
            planned.append((region, table, Cell(key, ts, value)))
            if kind == "put":
                puts += 1
            else:
                dels += 1
        if not planned:
            return
        # Group commit: one sequential write covers the whole batch; the
        # per-record cost beyond the first is the marginal buffer copy.
        records = self.wal.append_batch(
            [(region.name, table, (cell,), False)
             for region, table, cell in planned])
        for (region, _table, cell), record in zip(planned, records):
            region.note_write()
            region.tree.add(cell, seqno=record.seqno)
        applied = len(planned)
        yield from use(self.log_device, model.wal_group_append(applied))
        self.obs_wal_group.observe(applied)
        yield Timeout(model.memtable_op() * applied)
        if puts:
            counters.incr("async_index_put" if background else "index_put",
                          puts)
        if dels:
            counters.incr("async_index_delete" if background
                          else "index_delete", dels)

    def handle_index_scan(self, table: str, key_range: KeyRange,
                          limit: Optional[int] = None,
                          max_ts: Optional[int] = None,
                          ) -> Generator[Any, Any, List[Cell]]:
        """RI: read matching index entries (key-only cells with base ts)."""
        return (yield from self._with_handler(
            lambda: self._index_scan_body(table, key_range, limit, max_ts)))

    def _index_scan_body(self, table, key_range, limit, max_ts=None):
        result = yield from self._scan_body(table, key_range, limit, max_ts)
        self.cluster.counters.incr("index_read")
        return result

    def handle_local_index_scan(self, table: str, index_name: str,
                                inner_range: KeyRange,
                                limit: Optional[int] = None,
                                ) -> Generator[Any, Any, List[Cell]]:
        """Scan one server's slice of a LOCAL index: every hosted region
        of the base table contributes its reserved-keyspace entries.
        The broadcast nature of local-index reads (§3.1) comes from the
        client having to call this on EVERY region."""
        return (yield from self._with_handler(
            lambda: self._local_index_scan_body(table, index_name,
                                                inner_range, limit),
            pool=self.index_handlers))

    def _local_index_scan_body(self, table, index_name, inner_range, limit):
        reserved = local_scan_range(index_name, inner_range)
        out: List[Cell] = []
        regions = [r for r in self.regions.values()
                   if r.table.name == table]
        if not regions:
            raise NoSuchRegionError(
                f"{self.name} hosts no region of {table!r}")
        for region in sorted(regions, key=lambda r: r.key_range.start):
            region.note_read()
            stats = ReadStats()
            cells = region.tree.scan(reserved, limit=limit, stats=stats)
            yield Timeout(self.cluster.model._v(
                self.cluster.model.scan_open_ms))
            yield from self.charge_read(stats)
            out.extend(cells)
        self.cluster.counters.incr("index_read")
        if limit is not None:
            out = out[:limit]
        return out

    # -- replication (follower-side) ----------------------------------------------

    def _require_follower(self, table: str, region_name: str,
                          ) -> FollowerReplica:
        replica = self.follower_regions.get(region_name)
        if replica is None or replica.region.table.name != table:
            raise NoSuchRegionError(
                f"{self.name} hosts no follower of {table!r}/{region_name!r}")
        return replica

    def handle_replica_append(self, table: str, region_name: str,
                              records: Tuple, leader_time: Optional[float],
                              flush_point: Optional[Tuple[int, float]],
                              ) -> Generator[Any, Any, int]:
        """Apply one shipped WAL batch (possibly empty: a heartbeat).

        ``flush_point`` relinks the replica onto the leader's flushed
        store files first, so a batch can never reference rolled-away
        records the replica missed; ``leader_time`` (None for truncated
        batches) advances the coverage watermark.  Returns the replica's
        applied seqno — the replication high-watermark."""
        return (yield from self._with_handler(
            lambda: self._replica_append_body(table, region_name, records,
                                              leader_time, flush_point)))

    def _replica_append_body(self, table, region_name, records, leader_time,
                             flush_point):
        replica = self._require_follower(table, region_name)
        model = self.cluster.model
        if flush_point is not None and flush_point[0] > replica.relinked_seqno:
            replica.relink(
                self.cluster.hdfs.store_files(table, region_name),
                flush_point[0], flush_point[1])
        applied_cells = 0
        for record in records:
            if replica.apply(record):
                applied_cells += len(record.cells)
        if applied_cells:
            # Group framing: the batch arrived as one shipment and is
            # charged as one memtable pass — no WAL write on the
            # follower (durability is the leader WAL's job; promotion
            # re-logs from it).
            yield Timeout(model.memtable_op() * applied_cells)
        if leader_time is not None and leader_time > replica.caught_up_through:
            replica.caught_up_through = leader_time
        self.cluster.metrics.histogram(
            "replication_lag_ms", region=region_name).observe(
            replica.staleness_at(self.sim.now()))
        return replica.applied_seqno

    def handle_replica_get(self, table: str, region_name: str, row: bytes,
                           columns: Optional[List[str]] = None,
                           max_ts: Optional[int] = None,
                           ) -> Generator[Any, Any, Tuple[Dict, float]]:
        """Bounded-staleness read from a follower replica: returns
        ``(row_data, staleness_ms)`` where the advertised staleness is
        the replica's measured lag — every write acknowledged at least
        that long ago is guaranteed visible in the result."""
        return (yield from self._with_handler(
            lambda: self._replica_get_body(table, region_name, row,
                                           columns, max_ts)))

    def _replica_get_body(self, table, region_name, row, columns, max_ts):
        replica = self._require_follower(table, region_name)
        region = replica.region
        if not region.contains_row(row):
            raise NoSuchRegionError(
                f"follower {region_name} on {self.name} does not cover "
                f"{row!r}")
        region.note_read()
        stats = ReadStats()
        result = region.read_row(row, columns, max_ts=max_ts, stats=stats)
        yield from self.charge_read(stats)
        self.obs_follower_reads.inc()
        self.cluster.counters.incr("base_read")
        staleness = replica.staleness_at(self.sim.now())
        self.cluster.metrics.histogram(
            "follower_read_staleness_ms", server=self.name).observe(staleness)
        return result, staleness

    def handle_replica_repair(self, table: str, region_name: str,
                              cells: Tuple[Cell, ...],
                              ) -> Generator[Any, Any, int]:
        """Quorum read-repair: install leader-authoritative cells into a
        lagging follower's memtable.  Repairs are point fixes — they do
        not advance either watermark (the data was already durable on
        the leader, and a repair proves nothing about coverage)."""
        return (yield from self._with_handler(
            lambda: self._replica_repair_body(table, region_name, cells)))

    def _replica_repair_body(self, table, region_name, cells):
        replica = self._require_follower(table, region_name)
        for cell in cells:
            replica.region.tree.add(cell)
        if cells:
            yield Timeout(self.cluster.model.memtable_op() * len(cells))
        self.obs_quorum_repairs.inc(len(cells))
        return len(cells)

    # -- AUQ ----------------------------------------------------------------------

    def enqueue_index_task(self, task: IndexTask) -> Generator[Any, Any, None]:
        """AU1 second half: queue the index work.

        The intake gate is checked once, at put entry — a put that passed
        it must NOT wait here again (the drain barrier is already waiting
        for this very put via ``put_inflight``, so a second wait would
        deadlock the flush).  The barrier ordering stays sound: the drain
        waits for in-flight puts *before* checking queue emptiness, so an
        entry enqueued by an admitted put is always seen."""
        watermark = self.config.auq_high_watermark
        if watermark is not None and len(self.auq) >= watermark:
            yield from self._apply_degraded_sync(task)
            return
        yield Timeout(self.cluster.model._v(self.cluster.model.auq_enqueue_ms))
        self.auq.put(task)
        self.obs_auq_depth.set(len(self.auq))

    def enqueue_index_tasks(self, tasks: List[IndexTask],
                            ) -> Generator[Any, Any, None]:
        """Batched AU1: queue one batch's index tasks under ONE enqueue
        charge and ONE watermark check (the lock-hold coalescing of the
        batched write path).  Same gate semantics as the single-task
        form: the intake gate was already checked at multi_put entry."""
        if not tasks:
            return
        watermark = self.config.auq_high_watermark
        if watermark is not None and len(self.auq) >= watermark:
            for task in tasks:
                yield from self._apply_degraded_sync(task)
            return
        yield Timeout(self.cluster.model._v(self.cluster.model.auq_enqueue_ms))
        for task in tasks:
            self.auq.put(task)
        self.obs_auq_depth.set(len(self.auq))

    def _apply_degraded_sync(self, task: IndexTask) -> Generator[Any, Any, None]:
        """AUQ overflow fallback: at the high watermark the enqueue runs
        the maintenance synchronously (Algorithm 4 order, §4's bounded-queue
        degradation) instead of deepening the backlog.  Deadlock-safe for
        the same reason the sync-full path is: remote index ops land on the
        target's dedicated index-handler pool.  On RPC failure the task
        falls back into the queue — correctness over backpressure."""
        self.obs_auq_degraded.inc()
        try:
            yield from maintain_indexes(self.op_context, task,
                                        background=True, insert_first=False)
        except (NoSuchRegionError, RpcError):
            # NoSuchRegionError: the target index region moved (split or
            # migration) between locate and delivery — same retry story as
            # a lost RPC.
            self.auq.put(task)
            self.obs_auq_depth.set(len(self.auq))
            return
        self.staleness.record(task.ts, self.sim.now())

    def degrade_to_auq(self, task: IndexTask) -> None:
        """§6.2: a failed synchronous index op is queued for retry; causal
        consistency degrades to eventual for this entry.  Bypasses the
        intake gate — blocking here would deadlock the very drain that
        closed the gate (the failed op may come from an APS worker's peer)."""
        self.cluster.counters_degraded += 1
        self.obs_degraded.inc()
        self.auq.put(task)
        self.obs_auq_depth.set(len(self.auq))

    def drain_auq(self) -> Generator[Any, Any, None]:
        """Figure 5 step 1: pause intake and wait until the AUQ is empty
        and no task is mid-flight."""
        self.auq_gate.close()
        yield self.put_inflight.wait_zero()
        yield self.auq.wait_empty()
        yield self.auq_inflight.wait_zero()

    # -- background maintenance -----------------------------------------------------

    def _maintenance_loop(self) -> Generator[Any, Any, None]:
        while self.alive:
            yield Timeout(self.config.maintenance_interval_ms)
            if not self.alive:
                return
            placement = getattr(self.cluster, "placement", None)
            for region in list(self.regions.values()):
                if not self.alive:
                    return
                if region.tree.needs_flush and not region.flushing:
                    yield from self.flush_region(region)
                if region.tree.needs_compaction:
                    yield from self.compact_region(region)
                if placement is not None and region.name in self.regions:
                    # Split-policy check (synchronous: submits a master-
                    # side job at most; the close comes back as an RPC).
                    placement.consider_split(self, region)
            # Derived gauge refreshes once a tick; the raw hit/miss
            # counters under it tick inline with every cache access.
            self.obs_cache_hit_rate.set(self.cache.hit_rate())

    def flush_region(self, region: Region) -> Generator[Any, Any, None]:
        """The §5.3 flush protocol: 1. pause & drain, 2. flush, 3. roll WAL."""
        if region.flushing or not self.alive:
            return
        region.flushing = True
        model = self.cluster.model
        try:
            # The preFlush coprocessor hook (Figure 5): registered
            # observers may run arbitrary pre-flush work here.
            for observer in self.cluster.observers_for(region.table.name):
                yield from observer.pre_flush(self, region.name)
            drained = False
            # Only a base table with indexes can have pending AUQ work whose
            # WAL records this flush would roll away; index-table flushes
            # need no drain.
            if self.config.drain_auq_before_flush and region.table.has_indexes:
                yield from self.drain_auq()
                drained = True
            # Same synchronous step as prepare_flush: every write acked
            # by prepare_time has seqno <= handle.wal_seqno, which is
            # what makes the flush point below a valid coverage claim.
            prepare_time = self.sim.now()
            handle = region.tree.prepare_flush()
            if drained and not self.config.strict_flush_gate:
                # Safe early reopen: puts from here on hit the new memtable
                # and their WAL records outlive the roll-forward below.
                self.auq_gate.open()
                drained = False
            if handle is not None:
                yield from use(self.disk,
                               model.flush_cost(len(handle.memtable)))
                region.tree.complete_flush(handle)
                self.cluster.hdfs.set_store_files(
                    region.table.name, region.name, region.tree._sstables)
                self.wal.roll_forward(region.name, handle.wal_seqno)
                if self.cluster.replication.enabled:
                    # Recorded synchronously with the roll-forward (no
                    # yield between): ship batches carry this point, so
                    # a follower can never observe rolled records as
                    # neither-in-WAL-nor-in-store-files.
                    self.flush_points[region.name] = (handle.wal_seqno,
                                                      prepare_time)
                self.flushes_completed += 1
            if drained:
                self.auq_gate.open()
        finally:
            if not self.auq_gate.is_open:
                self.auq_gate.open()
            region.flushing = False

    def _dead_entry_filter(self, region: Region):
        """Predicate for the compaction-time index GC (DESIGN.md §14), or
        None when this region is not an index table under a lazy scheme.

        An entry is dead when it is *settled* (older than now − δ, so no
        in-flight blind ship or AUQ delivery for its own base put can
        still be racing) and the base row's current indexed values no
        longer match it.  The ts−δ discipline makes this final: a base
        row updated back to an old value re-inserts a NEW entry version,
        it never revives a purged one.  The base probe is the cost-free
        oracle read (``Region.read_row`` with no stats) — the simulated
        I/O charge stays the compaction's own ``compact_cost``.
        """
        index = self.cluster.index_by_table.get(region.table.name)
        if (index is None or not index.scheme.is_lazy
                or index.state is not IndexState.ACTIVE):
            return None
        cluster = self.cluster
        settled_before = self.sim.now() - DELTA_MS
        num_columns = len(index.columns)
        columns = list(index.columns)

        def dead(cell: Cell) -> bool:
            if cell.ts > settled_before:
                return False     # too fresh: its own delivery may be racing
            try:
                values, rowkey = decode_index_key(cell.key, num_columns)
            except EncodingError:
                return False
            try:
                server, region_name = cluster.locate(index.base_table, rowkey)
                base_region = server.regions[region_name]
            except Exception:
                return False     # recovery/move window: keep, retry later
            row_data = base_region.read_row(rowkey, columns=columns)
            current = {col: value for col, (value, _ts) in row_data.items()}
            if extract_index_values(index, current) == tuple(values):
                return False
            newest_base_ts = max(
                (ts for _col, (_value, ts) in row_data.items()), default=None)
            if newest_base_ts is not None and cell.ts > newest_base_ts:
                return False     # entry outruns the visible base row: keep
            return True

        return dead

    def compact_region(self, region: Region) -> Generator[Any, Any, None]:
        result = region.tree.compact(
            dead_entry_filter=self._dead_entry_filter(region))
        if result is None:
            return
        yield from use(self.disk,
                       self.cluster.model.compact_cost(result.cells_read))
        self.cluster.hdfs.set_store_files(
            region.table.name, region.name, region.tree._sstables)
        self.compactions_completed += 1
        if result.dropped_dead_entries:
            self.obs_dead_purged.inc(result.dropped_dead_entries)
            self.cluster.staleness.settle_debt(result.dropped_dead_entries)

    def _heartbeat_loop(self) -> Generator[Any, Any, None]:
        while self.alive:
            self.last_heartbeat = self.sim.now()
            yield Timeout(self.config.heartbeat_interval_ms)
