"""Simulated RPC fabric.

Every client→server and server→server interaction crosses this fabric
and pays propagation delay both ways; that is the "remote calls and
therefore a longer latency" cost of a *global* index the paper weighs
against local indexes (§3.1).  The fabric also injects faults: a failed
index RPC is what sends a sync-scheme operation down the degrade-to-AUQ
durability path (§6.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.errors import RpcError, ServerDownError
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator, Timeout
from repro.sim.latency import LatencyModel
from repro.sim.random import RandomStream

__all__ = ["Network", "FaultPlan"]


class FaultPlan:
    """Probabilistic RPC failures and per-link degradation, switchable
    at runtime.  Link degradation adds extra one-way propagation delay
    to a specific (source, destination) server pair — the knob failure
    storms use to slow a replication channel (followers fall behind and
    staleness grows) without killing anything."""

    def __init__(self, fail_probability: float = 0.0,
                 rng: Optional[RandomStream] = None):
        self.set_probability(fail_probability)
        self._rng = rng or RandomStream(0)
        self._link_extra_ms: Dict[Tuple[str, str], float] = {}

    def set_probability(self, fail_probability: float) -> None:
        """Retune the failure rate mid-run (a test turning chaos on for
        one phase and off for verification)."""
        if not 0.0 <= fail_probability <= 1.0:
            raise ValueError(
                f"fail_probability must be in [0, 1], "
                f"got {fail_probability!r}")
        self.fail_probability = fail_probability

    def disable(self) -> None:
        """Stop injecting failures (equivalent to ``set_probability(0)``)."""
        self.fail_probability = 0.0

    def should_fail(self) -> bool:
        return (self.fail_probability > 0.0
                and self._rng.random() < self.fail_probability)

    # -- per-link degradation (replication channels, failure storms) --------

    def degrade_link(self, source: str, destination: str,
                     extra_ms: float) -> None:
        """Add ``extra_ms`` of one-way delay to every RPC from ``source``
        to ``destination`` (directional; round trips pay it both ways)."""
        if extra_ms < 0.0:
            raise ValueError(f"extra_ms must be >= 0, got {extra_ms!r}")
        self._link_extra_ms[(source, destination)] = extra_ms

    def clear_link(self, source: Optional[str] = None,
                   destination: Optional[str] = None) -> None:
        """Remove degradation for one link, or for every link when called
        with no arguments."""
        if source is None and destination is None:
            self._link_extra_ms.clear()
        else:
            self._link_extra_ms.pop((source, destination), None)

    def link_extra_ms(self, source: Optional[str], destination: str) -> float:
        if source is None or not self._link_extra_ms:
            return 0.0
        return self._link_extra_ms.get((source, destination), 0.0)


class Network:
    def __init__(self, sim: Simulator, model: LatencyModel,
                 rng: Optional[RandomStream] = None,
                 faults: Optional[FaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.model = model
        self._rng = rng or RandomStream(1)
        self.faults = faults or FaultPlan()
        self.metrics = metrics or MetricsRegistry()
        self.rpc_count = 0
        self.failed_rpcs = 0
        # target name -> rpc_ms{server=} histogram, cached so the
        # per-RPC hot path skips registry resolution.
        self._rpc_ms = {}

    def call(self, target: Any,
             handler_factory: Callable[[], Generator],
             source: Optional[str] = None,
             ) -> Generator[Any, Any, Any]:
        """Round-trip RPC: propagate → run handler on target → propagate back.

        ``target`` is any object with ``alive`` (bool) and ``name`` (str);
        the handler coroutine is produced lazily so a dead server never
        executes it.  Usage: ``result = yield from network.call(server,
        lambda: server.handle_get(...))``.  Callers that name their
        ``source`` server additionally pay any per-link degradation the
        :class:`FaultPlan` has configured for that (source, target) pair.
        """
        self.rpc_count += 1
        start = self.sim.now()
        faults = self.faults
        link_extra = (faults.link_extra_ms(source, target.name)
                      if faults._link_extra_ms else 0.0)
        if faults.should_fail():
            self.failed_rpcs += 1
            self.metrics.counter("rpc_failures", server=target.name).inc()
            # The request is lost in flight: the caller still waited.
            yield Timeout(self.model.rpc_delay(self._rng) + link_extra)
            raise RpcError(f"rpc to {target.name} lost (injected fault)")

        yield Timeout(self.model.rpc_delay(self._rng) + link_extra)
        if not target.alive:
            self.failed_rpcs += 1
            self.metrics.counter("rpc_failures", server=target.name).inc()
            raise ServerDownError(f"server {target.name} is down")
        result = yield from handler_factory()
        if not target.alive:
            # Server died while serving: the response never leaves the node.
            self.failed_rpcs += 1
            self.metrics.counter("rpc_failures", server=target.name).inc()
            raise ServerDownError(f"server {target.name} died mid-request")
        yield Timeout(self.model.rpc_delay(self._rng) + link_extra)
        histogram = self._rpc_ms.get(target.name)
        if histogram is None:
            histogram = self.metrics.histogram("rpc_ms", server=target.name)
            self._rpc_ms[target.name] = histogram
        histogram.observe(self.sim.now() - start)
        return result
