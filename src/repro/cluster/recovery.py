"""Region-server failure recovery (§5.3).

HBase's protocol, plus the Diff-Index addition:

1. fetch the dead server's WAL from SimHDFS and split it per region;
2. reassign each region to a live server;
3. re-link the flushed store files (they persist in SimHDFS);
4. replay the region's WAL slice into the new server's memtable, re-logging
   every record into the new server's own WAL;
5. **Diff-Index**: every replayed put of an indexed table is re-added to
   the new server's AUQ, "regardless of whether or not it has been
   delivered to index tables before the failure" — correct because index
   entries carry base timestamps, making re-delivery idempotent.

Because the drain-AUQ-before-flush protocol guarantees ``PR(Flushed) = ∅``,
the WAL is a complete log of every pending AUQ task, and no separate AUQ
log is needed.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, TYPE_CHECKING

from repro.core.auq import IndexTask
from repro.core.local import is_reserved_key
from repro.lsm.wal import WalRecord
from repro.cluster.region import Region, split_cell_key
from repro.sim.kernel import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import MiniCluster
    from repro.cluster.server import RegionServer

__all__ = ["recover_server", "task_from_wal_record"]

_REPLAY_COST_PER_RECORD_MS = 0.02
_REGION_OPEN_COST_MS = 5.0


def task_from_wal_record(record: WalRecord) -> Optional[IndexTask]:
    """Rebuild the AUQ task for one replayed base mutation.

    A record whose cells are all tombstones was a row delete; mixed or
    value cells reconstruct the put's column map.  ``index_names=None``
    targets every index of the table — re-delivery is idempotent, so over-
    covering sync indexes is safe and also repairs any sync index op the
    crash interrupted before its ack.
    """
    if not record.indexed or not record.cells:
        return None
    values: Dict[str, bytes] = {}
    row = None
    ts = record.cells[0].ts
    all_tombstones = True
    for cell in record.cells:
        if is_reserved_key(cell.key):
            # Local-index cells ride in the same record as their base put
            # (crash atomicity); they replay as plain cells and need no
            # AUQ task.
            continue
        row, qualifier = split_cell_key(cell.key)
        if cell.value is not None:
            values[qualifier] = cell.value
            all_tombstones = False
    if row is None:
        return None
    if all_tombstones:
        return IndexTask(record.table, row, None, ts)
    return IndexTask(record.table, row, values, ts)


def recover_server(cluster: "MiniCluster", dead: "RegionServer",
                   ) -> Generator[Any, Any, int]:
    """Reassign and replay every region of ``dead``.  Returns the number
    of regions recovered."""
    hdfs = cluster.hdfs
    master = cluster.master
    wal_split = {}
    if hdfs.has_wal(dead.name):
        records = hdfs.wal_records(dead.name)
        for record in records:
            wal_split.setdefault(record.region_name, []).append(record)

    recovered = 0
    for info in master.regions_on(dead.name):
        target = _pick_target(cluster, dead)
        descriptor = master.descriptor(info.table)
        region = Region(info.region_name, descriptor, info.key_range,
                        seed=recovered + 1)
        # (3) re-link flushed store files.
        region.tree.adopt_sstables(hdfs.store_files(info.table,
                                                    info.region_name))
        target.add_region(region)
        yield Timeout(_REGION_OPEN_COST_MS)

        # (4)+(5) replay the WAL slice.  The re-log into the new server's
        # WAL is ONE group commit per region (the replay is sequential
        # I/O on both ends); each replayed mutation keeps its own record
        # and a fresh seqno, so later flushes roll forward correctly.
        replayed = wal_split.get(info.region_name, [])
        if replayed:
            new_records = target.wal.append_batch(
                [(region.name, record.table, record.cells, record.indexed)
                 for record in replayed])
            for record, new_record in zip(replayed, new_records):
                region.tree.add_many(record.cells, seqno=new_record.seqno)
                task = task_from_wal_record(record)
                if task is not None:
                    task.enqueued_at = cluster.sim.now()
                    target.auq.put(task)
            yield Timeout(len(replayed) * _REPLAY_COST_PER_RECORD_MS)

        master.reassign(info, target.name)
        recovered += 1

    hdfs.delete_wal(dead.name)
    return recovered


def _pick_target(cluster: "MiniCluster", dead: "RegionServer",
                 ) -> "RegionServer":
    candidates = [s for s in cluster.servers.values()
                  if s.alive and s.name != dead.name]
    if not candidates:
        raise RuntimeError("no live server available for recovery")
    # Least-loaded placement keeps the post-recovery layout balanced.
    # The placement manager's score folds in recent per-region request
    # rates, so recovery and the balancer agree on what "loaded" means
    # and don't immediately undo each other's work.
    placement = getattr(cluster, "placement", None)
    if placement is not None:
        return min(candidates,
                   key=lambda s: (placement.score_server(s), s.name))
    return min(candidates, key=lambda s: len(s.regions))
