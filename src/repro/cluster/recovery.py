"""Region-server failure recovery (§5.3), promotion-aware.

HBase's protocol, plus the Diff-Index addition:

1. fetch the dead server's WAL from SimHDFS and split it per region;
2. reassign each region to a live server;
3. re-link the flushed store files (they persist in SimHDFS);
4. replay the region's WAL slice into the new server's memtable, re-logging
   every record into the new server's own WAL;
5. **Diff-Index**: every replayed put of an indexed table is re-added to
   the new server's AUQ, "regardless of whether or not it has been
   delivered to index tables before the failure" — correct because index
   entries carry base timestamps, making re-delivery idempotent.

Because the drain-AUQ-before-flush protocol guarantees ``PR(Flushed) = ∅``,
the WAL is a complete log of every pending AUQ task, and no separate AUQ
log is needed.

With replication on (``repro.replication``), a region that still has a
live follower takes the fast path instead: *promotion* of the most
caught-up follower, replaying only the catch-up tail of the WAL slice
(see :func:`repro.replication.promote.promote_follower`).  The classic
full replay above remains the fallback for unreplicated regions and for
the unlucky case where every follower died too.  Either way the dead
server is also scrubbed from the follower sets of regions led elsewhere,
and every affected region is topped back up to its replication factor.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.auq import IndexTask
from repro.core.local import is_reserved_key
from repro.lsm.wal import WalRecord
from repro.cluster.region import Region, split_cell_key
from repro.sim.kernel import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import MiniCluster
    from repro.cluster.server import RegionServer

__all__ = ["recover_server", "task_from_wal_record"]

_REPLAY_COST_PER_RECORD_MS = 0.02
_REGION_OPEN_COST_MS = 5.0


def task_from_wal_record(record: WalRecord) -> Optional[IndexTask]:
    """Rebuild the AUQ task for one replayed base mutation.

    A record whose cells are all tombstones was a row delete; mixed or
    value cells reconstruct the put's column map.  ``index_names=None``
    targets every index of the table — re-delivery is idempotent, so over-
    covering sync indexes is safe and also repairs any sync index op the
    crash interrupted before its ack.
    """
    if not record.indexed or not record.cells:
        return None
    values: Dict[str, bytes] = {}
    row = None
    ts = record.cells[0].ts
    all_tombstones = True
    for cell in record.cells:
        if is_reserved_key(cell.key):
            # Local-index cells ride in the same record as their base put
            # (crash atomicity); they replay as plain cells and need no
            # AUQ task.
            continue
        row, qualifier = split_cell_key(cell.key)
        if cell.value is not None:
            values[qualifier] = cell.value
            all_tombstones = False
    if row is None:
        return None
    if all_tombstones:
        return IndexTask(record.table, row, None, ts)
    return IndexTask(record.table, row, values, ts)


def recover_server(cluster: "MiniCluster", dead: "RegionServer",
                   ) -> Generator[Any, Any, int]:
    """Reassign and replay (or promote) every region of ``dead``.
    Returns the number of regions recovered."""
    from repro.replication.promote import (ensure_replicas,
                                           find_promotion_candidate,
                                           promote_follower)

    hdfs = cluster.hdfs
    master = cluster.master
    replication = cluster.replication
    wal_split: Dict[str, List[WalRecord]] = {}
    if hdfs.has_wal(dead.name):
        records = hdfs.wal_records(dead.name)
        for record in records:
            wal_split.setdefault(record.region_name, []).append(record)

    recovered = 0
    for info in master.regions_on(dead.name):
        wal_slice = wal_split.get(info.region_name, [])
        _prune_dead_followers(cluster, info)
        candidate = (find_promotion_candidate(cluster, info)
                     if replication.enabled else None)
        if candidate is not None:
            # Fast path: hand the region to its most caught-up follower;
            # only the catch-up tail above its high-watermark is replayed.
            target, replica = candidate
            yield from promote_follower(cluster, info, target, replica,
                                        wal_slice)
            cluster.metrics.counter("promotions_total").inc()
            ensure_replicas(cluster, info)
            recovered += 1
            continue

        target = _pick_target(cluster, dead, info)
        descriptor = master.descriptor(info.table)
        region = Region(info.region_name, descriptor, info.key_range,
                        seed=recovered + 1)
        # (3) re-link flushed store files.
        region.tree.adopt_sstables(hdfs.store_files(info.table,
                                                    info.region_name))
        target.add_region(region)
        yield Timeout(_REGION_OPEN_COST_MS)

        # (4)+(5) replay the WAL slice.  The re-log into the new server's
        # WAL is ONE group commit per region (the replay is sequential
        # I/O on both ends); each replayed mutation keeps its own record
        # and a fresh seqno, so later flushes roll forward correctly.
        if wal_slice:
            new_records = target.wal.append_batch(
                [(region.name, record.table, record.cells, record.indexed)
                 for record in wal_slice])
            for record, new_record in zip(wal_slice, new_records):
                region.tree.add_many(record.cells, seqno=new_record.seqno)
                task = task_from_wal_record(record)
                if task is not None:
                    task.enqueued_at = cluster.sim.now()
                    target.auq.put(task)
            yield Timeout(len(wal_slice) * _REPLAY_COST_PER_RECORD_MS)

        master.reassign(info, target.name)
        if replication.enabled:
            ensure_replicas(cluster, info)
        recovered += 1

    if replication.enabled:
        _scrub_dead_follower(cluster, dead.name)
    hdfs.delete_wal(dead.name)
    return recovered


def _prune_dead_followers(cluster: "MiniCluster", info) -> None:
    """Drop follower entries pointing at dead servers (their memtable
    replicas died with the process)."""
    if not info.replica_servers:
        return
    info.replica_servers[:] = [
        name for name in info.replica_servers
        if name in cluster.servers and cluster.servers[name].alive]


def _scrub_dead_follower(cluster: "MiniCluster", dead_name: str) -> None:
    """Regions led elsewhere lose any follower they had on the dead
    server; each is topped back up on a fresh host (anti-affine)."""
    from repro.replication.promote import ensure_replicas
    for infos in cluster.master.layout.values():
        for info in infos:
            if dead_name not in info.replica_servers:
                continue
            info.replica_servers.remove(dead_name)
            leader = cluster.servers.get(info.server_name)
            if leader is not None:
                leader.ship_state.pop((info.region_name, dead_name), None)
            ensure_replicas(cluster, info)


def _pick_target(cluster: "MiniCluster", dead: "RegionServer",
                 info) -> "RegionServer":
    """Least-loaded live server for a full-replay recovery, anti-affine
    with the region's surviving followers when possible (the shared
    scoring lives in :func:`repro.placement.manager.pick_placement_target`
    so recovery and the balancer agree on what "loaded" means)."""
    from repro.placement.manager import pick_placement_target
    target = pick_placement_target(
        cluster, exclude=(dead.name, *info.replica_servers))
    if target is None:
        # Every non-follower server is gone; tolerate co-location rather
        # than lose the region, and retire the clashing follower.
        target = pick_placement_target(cluster, exclude=(dead.name,))
    if target is None:
        raise RuntimeError("no live server available for recovery")
    if target.name in info.replica_servers:
        info.replica_servers.remove(target.name)
        target.remove_follower(info.region_name)
    return target
