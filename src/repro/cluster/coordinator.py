"""ZooKeeper stand-in: heartbeat-based failure detection.

§2.2: "ZooKeeper is the cluster management node dealing with region
assignment, node failure, etc." — here a single watchdog process that
declares a server dead when its heartbeat goes quiet for longer than the
timeout and then drives :func:`repro.cluster.recovery.recover_server`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Set, TYPE_CHECKING

from repro.cluster.recovery import recover_server
from repro.sim.kernel import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import MiniCluster

__all__ = ["Coordinator"]


class Coordinator:
    def __init__(self, cluster: "MiniCluster",
                 heartbeat_timeout_ms: float = 2000.0,
                 check_interval_ms: float = 250.0):
        self.cluster = cluster
        self.heartbeat_timeout_ms = heartbeat_timeout_ms
        self.check_interval_ms = check_interval_ms
        self.declared_dead: Set[str] = set()
        self.recoveries_completed: List[str] = []
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.cluster.sim.spawn(self._watch_loop(), name="coordinator")

    def _watch_loop(self) -> Generator[Any, Any, None]:
        while True:
            yield Timeout(self.check_interval_ms)
            now = self.cluster.sim.now()
            for server in list(self.cluster.servers.values()):
                if server.name in self.declared_dead:
                    continue
                silent_for = now - server.last_heartbeat
                if not server.alive or silent_for > self.heartbeat_timeout_ms:
                    self.declared_dead.add(server.name)
                    server.alive = False  # fence a hung-but-running server
                    yield from recover_server(self.cluster, server)
                    self.recoveries_completed.append(server.name)
