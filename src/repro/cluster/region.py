"""Regions: the unit of partitioning and recovery.

A region owns one contiguous key range of one table and stores it as an
LSM tree (paper §2.2: "each column family is partitioned and stored on
multiple nodes, and on each node it is stored as a LSM-tree").  Rows are
stored as one cell per column with the composite LSM key
``row ⊕ 0x00 ⊕ qualifier``; index tables are key-only so their cell key
is the index key itself.

Regions also provide per-row locks: HBase serialises writes to one row,
and the paper's sync-full correctness (SU3 reading the version right
before SU1's timestamp) relies on that serialisation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.lsm.cache import BlockCache
from repro.lsm.policy import compaction_policy_from_label
from repro.lsm.tree import LSMConfig, LSMTree, ReadStats
from repro.lsm.types import Cell, KeyRange, cell_size
from repro.cluster.table import TableDescriptor
from repro.sim.kernel import RESOLVED_NONE, Future, Simulator

__all__ = ["Region", "RowLocks", "compose_cell_key", "split_cell_key"]

_SEP = b"\x00"


def compose_cell_key(row: bytes, qualifier: str) -> bytes:
    """LSM key for one column of one row.

    Rows of base tables must not contain 0x00 (workload keys are ASCII);
    index-table rows are raw index keys stored with an empty qualifier —
    they never compose with a qualifier, so arbitrary bytes are fine there.
    """
    if not qualifier:
        return row
    return row + _SEP + qualifier.encode()


def split_cell_key(cell_key: bytes) -> Tuple[bytes, str]:
    row, sep, qualifier = cell_key.partition(_SEP)
    if not sep:
        return cell_key, ""
    return row, qualifier.decode()


class RowLocks:
    """FIFO per-row mutexes, allocated on demand and freed when idle."""

    def __init__(self) -> None:
        self._queues: Dict[bytes, List[Future]] = {}

    def acquire(self, row: bytes) -> Future:
        queue = self._queues.get(row)
        if queue is None:
            self._queues[row] = []
            return RESOLVED_NONE
        future = Future()
        queue.append(future)
        return future

    def release(self, row: bytes) -> None:
        queue = self._queues.get(row)
        if queue is None:
            raise SimulationError(f"row lock released but never held: {row!r}")
        if queue:
            queue.pop(0).set_result(None)
        else:
            del self._queues[row]

    @property
    def held(self) -> int:
        return len(self._queues)


class Region:
    def __init__(self, name: str, table: TableDescriptor, key_range: KeyRange,
                 cache: Optional[BlockCache] = None, seed: int = 0):
        self.name = name
        self.table = table
        self.key_range = key_range
        config = LSMConfig(
            flush_threshold_bytes=table.flush_threshold_bytes,
            block_bytes=table.block_bytes,
            max_versions=table.max_versions,
            prefix_compression=table.prefix_compression,
            remix_enabled=table.scan_engine == "remix",
            learned_index=table.learned_index,
            compaction=compaction_policy_from_label(table.compaction_policy),
            memtable_map=table.memtable_map)
        self.tree = LSMTree(name=name, config=config, cache=cache, seed=seed)
        self.locks = RowLocks()
        self.flushing = False
        # Set while a split/migration close is in progress: writes are
        # rejected (stale-route retry) but reads keep serving — the APS
        # must still be able to plan against this region or the close's
        # own drain-before-flush would deadlock.
        self.closing = False
        # Request accounting for the placement layer: reset implicitly when
        # a region object is recreated (move/recovery) — the balancer clamps
        # on delta, so a reset reads as a quiet interval, never as negative.
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Region {self.name} {self.key_range!r}>"

    def contains_row(self, row: bytes) -> bool:
        return self.key_range.contains(row)

    # -- placement accounting --------------------------------------------------

    def note_read(self) -> None:
        self.reads += 1

    def note_write(self) -> None:
        self.writes += 1

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    def owned_bytes(self) -> int:
        """Approximate bytes of visible data INSIDE this region's key
        range.  ``tree.total_bytes`` would overcount after a split: both
        daughters adopt the parent's full store files (the reference-file
        analogue), so raw file size stays at the parent's size until a
        compaction — and a split policy keyed on it would cascade."""
        return sum(cell_size(cell)
                   for cell in self.tree.scan(KeyRange(self.key_range.start,
                                                       self.key_range.end)))

    def split_point(self, min_distinct: int = 2) -> Optional[bytes]:
        """Midpoint-of-keys split policy: the median distinct routable key,
        or None if the region holds too few distinct keys to cut.

        For base tables the routable key is the ROW (cells compose
        ``row ⊕ 0x00 ⊕ qualifier``; reserved leading-0x00 keys are local-
        index entries and not routable); index tables route on the raw
        cell key.  The returned key is strictly inside ``key_range`` —
        ``keys`` is strictly increasing, so with ≥ 2 entries the median
        exceeds ``keys[0] ≥ key_range.start``, and every key scanned is
        below ``key_range.end``.
        """
        keys: List[bytes] = []
        last: Optional[bytes] = None
        for cell in self.tree.scan(KeyRange(self.key_range.start,
                                            self.key_range.end)):
            if self.table.is_index:
                key = cell.key
            else:
                if cell.key.startswith(_SEP):
                    continue
                key = split_cell_key(cell.key)[0]
            if key != last:
                keys.append(key)
                last = key
        if len(keys) < max(min_distinct, 2):
            return None
        return keys[len(keys) // 2]

    # -- row-level reads (pure; server charges the ReadStats) -----------------

    def read_row(self, row: bytes, columns: Optional[List[str]] = None,
                 max_ts: Optional[int] = None,
                 stats: Optional[ReadStats] = None,
                 ) -> Dict[str, Tuple[bytes, int]]:
        """Visible value and ts per column: ``{qualifier: (value, ts)}``."""
        if self.table.is_index:
            raise SimulationError("read_row on an index table; use scan")
        out: Dict[str, Tuple[bytes, int]] = {}
        if columns is None:
            cells = self.tree.scan(
                KeyRange(row + _SEP, row + _SEP + b"\xff"),
                max_ts=max_ts, stats=stats)
            for cell in cells:
                _row, qualifier = split_cell_key(cell.key)
                out[qualifier] = (cell.value, cell.ts)
        else:
            for qualifier in columns:
                cell = self.tree.get(compose_cell_key(row, qualifier),
                                     max_ts=max_ts, stats=stats)
                if cell is not None:
                    out[qualifier] = (cell.value, cell.ts)
        return out

    def scan_rows(self, key_range: KeyRange, limit: Optional[int] = None,
                  max_ts: Optional[int] = None,
                  stats: Optional[ReadStats] = None) -> List[Cell]:
        """Raw visible cells in range (index-table scans, verification)."""
        clamped = key_range.clamp(
            KeyRange(self.key_range.start, self.key_range.end))
        if clamped.is_empty():
            return []
        cells = self.tree.scan(clamped, max_ts=max_ts, limit=limit,
                               stats=stats)
        if not self.table.is_index:
            # The region's reserved keyspace (leading 0x00: local-index
            # entries) is invisible to row-level scans.
            cells = [c for c in cells if not c.key.startswith(_SEP)]
        return cells

    def iter_base_rows(self) -> Iterator[Tuple[bytes, Dict[str, Tuple[bytes, int]]]]:
        """Cost-free full iteration of visible rows (verification only)."""
        current_row: Optional[bytes] = None
        current: Dict[str, Tuple[bytes, int]] = {}
        for cell in self.tree.scan(KeyRange(self.key_range.start,
                                            self.key_range.end)):
            if cell.key.startswith(_SEP):
                continue  # reserved keyspace (local-index entries)
            row, qualifier = split_cell_key(cell.key)
            if row != current_row:
                if current_row is not None:
                    yield current_row, current
                current_row, current = row, {}
            current[qualifier] = (cell.value, cell.ts)
        if current_row is not None:
            yield current_row, current
