"""MiniCluster: the whole distributed store in one object.

Owns the simulator, the durable FS, the network, the master, the
coordinator and N region servers — the moral equivalent of the paper's
experimental clusters (8 region servers in-house, 40 in RC2), with
knobs for every experiment: latency model, fault injection, staleness
sampling, flush-protocol ablations.
"""

from __future__ import annotations

import dataclasses
from typing import (Any, Dict, Generator, List, Optional, Tuple,
                    TYPE_CHECKING)

from repro.errors import NoSuchIndexError, SimulationError
from repro.core.index import (IndexDescriptor, IndexState,
                              extract_index_values, row_index_key)
from repro.core.observers import build_observers
from repro.core.staleness import StalenessTracker
from repro.lsm.types import Cell
from repro.cluster.client import Client
from repro.cluster.coordinator import Coordinator
from repro.cluster.counters import OpCounters
from repro.cluster.hdfs import SimHDFS
from repro.cluster.master import Master
from repro.cluster.network import FaultPlan, Network
from repro.cluster.region import compose_cell_key
from repro.cluster.server import RegionServer, ServerConfig
from repro.cluster.table import TableDescriptor, TableKind
from repro.obs import MetricsRegistry, Tracer
from repro.replication.config import ReplicationConfig
from repro.sim.kernel import Process, Simulator
from repro.sim.latency import LatencyModel
from repro.sim.random import SeedFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.placement.manager import PlacementConfig

__all__ = ["MiniCluster"]


class MiniCluster:
    """The whole simulated store: simulator, SimHDFS, network, master,
    coordinator, placement manager, DDL manager and N region servers,
    plus the operator facade (``create_table`` / ``create_index`` /
    ``kill_server`` / ``quiesce`` / ``advance``) that tests and
    benchmarks drive."""

    def __init__(self, num_servers: int = 4,
                 model: Optional[LatencyModel] = None,
                 server_config: Optional[ServerConfig] = None,
                 seed: int = 42,
                 staleness_sample_rate: float = 1.0,
                 fault_plan: Optional[FaultPlan] = None,
                 heartbeat_timeout_ms: float = 2000.0,
                 placement: Optional["PlacementConfig"] = None,
                 replication: Optional[ReplicationConfig] = None,
                 scan_engine: str = "remix",
                 learned_index: bool = True,
                 memtable_map: str = "arraymap"):
        if scan_engine not in ("remix", "heap"):
            raise ValueError(f"unknown scan engine {scan_engine!r}")
        if memtable_map not in ("arraymap", "skiplist"):
            raise ValueError(f"unknown memtable map {memtable_map!r}")
        # Default range-scan engine and block-index flavour for every
        # table this cluster creates (DESIGN.md §13); per-table override
        # via create_table.
        self.scan_engine = scan_engine
        self.learned_index = learned_index
        self.memtable_map = memtable_map
        self.sim = Simulator()
        self.replication = replication or ReplicationConfig()
        self.model = model or LatencyModel()
        self.seeds = SeedFactory(seed)
        self.hdfs = SimHDFS()
        # Observability substrate: one registry + tracer per cluster; every
        # probe (Table 2 counters, AUQ gauges, RPC histograms, spans) feeds
        # these, and the bench report snapshots them.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.sim.now, registry=self.metrics)
        self.network = Network(self.sim, self.model,
                               rng=self.seeds.stream("network"),
                               faults=fault_plan, metrics=self.metrics)
        self.counters = OpCounters(registry=self.metrics)
        self.counters_degraded = 0
        # Highest timestamp any server has handed out (see
        # RegionServer.assign_timestamp).
        self.ts_floor = 0
        self.staleness = StalenessTracker(
            sample_rate=staleness_sample_rate,
            seed=self.seeds.seed_for("staleness") % (2 ** 31))
        # Deferred GC for the validation scheme: reads hand discovered
        # dead entries here; the worker (spawned in start()) deletes
        # them in the background (DESIGN.md §14).
        from repro.validation import ValidationCleaner  # deferred: cycle
        self.validation_cleaner = ValidationCleaner(self)

        self.server_config = server_config or ServerConfig()
        self.servers: Dict[str, RegionServer] = {}
        for i in range(num_servers):
            name = f"rs{i + 1}"
            # Each server gets its own config copy so per-server tuning
            # (or a test freezing one server's heartbeat) cannot leak.
            self.servers[name] = RegionServer(
                name, self, config=dataclasses.replace(self.server_config))

        self.master = Master(self)
        self.coordinator = Coordinator(
            self, heartbeat_timeout_ms=heartbeat_timeout_ms)
        self._observer_cache: Dict[str, Tuple] = {}
        self._started = False

        # DDL bookkeeping.  ``ddl_epoch`` increments on every index
        # create/drop; tasks and planned ops carry the epoch they were
        # created under so maintenance can never leak into a same-named
        # index recreated later.  ``index_by_table`` is the authoritative
        # live-index registry keyed by index TABLE name, consulted at op
        # delivery time.
        self.ddl_epoch = 0
        self.index_by_table: Dict[str, IndexDescriptor] = {}
        from repro.ddl.manager import DdlManager  # deferred: import cycle
        self.ddl = DdlManager(self)
        from repro.placement.manager import PlacementManager  # deferred
        self.placement = PlacementManager(self, placement)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "MiniCluster":
        if not self._started:
            for server in self.servers.values():
                server.start()
            self.coordinator.start()
            self.placement.start()
            self.sim.spawn(self.validation_cleaner.worker(),
                           name="validation-cleaner")
            self._started = True
        return self

    def kill_server(self, name: str) -> None:
        """Crash one region server; the coordinator will notice via the
        missed heartbeats and run recovery."""
        self.servers[name].kill()

    def alive_servers(self) -> List[RegionServer]:
        return [s for s in self.servers.values() if s.alive]

    # -- catalog ------------------------------------------------------------------

    def descriptor(self, table: str) -> TableDescriptor:
        return self.master.descriptor(table)

    def index_descriptor(self, index_name: str) -> IndexDescriptor:
        for descriptor in self.master.tables.values():
            index = descriptor.indexes.get(index_name)
            if index is not None:
                return index
        raise NoSuchIndexError(index_name)

    def observers_for(self, table: str) -> Tuple:
        cached = self._observer_cache.get(table)
        if cached is None:
            cached = build_observers(self.descriptor(table))
            self._observer_cache[table] = cached
        return cached

    # -- DDL -----------------------------------------------------------------------

    def _attach_index_descriptor(self, index: IndexDescriptor,
                                 state: IndexState) -> IndexDescriptor:
        """Stamp a fresh DDL epoch on the descriptor and register it in the
        catalog and the live-index registry.  Every index creation funnels
        through here so the epoch invariant (recreated index > any task
        enqueued before the recreate) holds unconditionally."""
        self.ddl_epoch += 1
        stamped = dataclasses.replace(index, state=state,
                                      created_epoch=self.ddl_epoch)
        base = self.descriptor(index.base_table)
        base.attach_index(stamped)
        if not stamped.is_local:
            self.index_by_table[stamped.table_name] = stamped
        self._observer_cache.pop(index.base_table, None)
        return stamped

    def _set_index_descriptor(self, new_descriptor: IndexDescriptor) -> None:
        """Swap an index's descriptor in place (state/scheme change; the
        DDL epoch is NOT bumped — it is still the same index)."""
        base = self.descriptor(new_descriptor.base_table)
        base.indexes[new_descriptor.name] = new_descriptor
        if not new_descriptor.is_local:
            self.index_by_table[new_descriptor.table_name] = new_descriptor
        self._observer_cache.pop(new_descriptor.base_table, None)

    def create_table(self, name: str,
                     split_keys: Optional[List[bytes]] = None,
                     max_versions: int = 3,
                     flush_threshold_bytes: int = 256 * 1024,
                     block_bytes: int = 4096,
                     scan_engine: Optional[str] = None,
                     learned_index: Optional[bool] = None,
                     compaction_policy: str = "size_tiered",
                     memtable_map: Optional[str] = None,
                     ) -> TableDescriptor:
        from repro.lsm.policy import POLICY_LABELS
        if compaction_policy not in POLICY_LABELS:
            raise ValueError(
                f"unknown compaction policy {compaction_policy!r}")
        if memtable_map not in (None, "arraymap", "skiplist"):
            raise ValueError(f"unknown memtable map {memtable_map!r}")
        descriptor = TableDescriptor(
            name, TableKind.BASE, max_versions=max_versions,
            flush_threshold_bytes=flush_threshold_bytes,
            block_bytes=block_bytes,
            scan_engine=scan_engine or self.scan_engine,
            learned_index=(self.learned_index if learned_index is None
                           else learned_index),
            compaction_policy=compaction_policy,
            memtable_map=memtable_map or self.memtable_map)
        self.master.create_table(descriptor, split_keys=split_keys)
        return descriptor

    def create_index(self, index: IndexDescriptor,
                     split_keys: Optional[List[bytes]] = None,
                     backfill="offline",
                     prefix_compression: bool = False,
                     compaction_policy: Optional[str] = None,
                     ) -> TableDescriptor:
        """CREATE INDEX: create the key-only index table, register the
        descriptor in the catalog (and the base table descriptor, as
        BigInsights stores a copy there), and build entries for
        pre-existing base data.

        ``backfill`` modes:

        * ``"offline"`` (or ``True``, the legacy spelling) — the original
          instantaneous, cost-free build;
        * ``False`` — attach only, no entries for existing rows;
        * ``"online"`` — chunked sim-time build through the repro.ddl
          state machine (see :meth:`create_index_online`, which also
          returns the job handle).
        """
        if backfill == "online":
            self.create_index_online(index, split_keys=split_keys,
                                     prefix_compression=prefix_compression,
                                     compaction_policy=compaction_policy)
            return self.descriptor(index.table_name if not index.is_local
                                   else index.base_table)
        if backfill not in (True, False, "offline"):
            raise ValueError(f"unknown backfill mode {backfill!r}")
        base = self.descriptor(index.base_table)
        if index.name in base.indexes:
            from repro.errors import IndexExistsError
            raise IndexExistsError(index.name)
        if index.is_local:
            # No separate table: entries live in each base region's
            # reserved keyspace (co-location, §3.1).
            stamped = self._attach_index_descriptor(index, IndexState.ACTIVE)
            if backfill:
                self._backfill_local_index(stamped)
            return base
        index_table = TableDescriptor(
            index.table_name, TableKind.INDEX,
            max_versions=base.max_versions,
            flush_threshold_bytes=base.flush_threshold_bytes,
            block_bytes=base.block_bytes,
            prefix_compression=prefix_compression,
            scan_engine=base.scan_engine,
            learned_index=base.learned_index,
            compaction_policy=compaction_policy or base.compaction_policy,
            memtable_map=base.memtable_map)
        self.master.create_table(index_table, split_keys=split_keys)
        stamped = self._attach_index_descriptor(index, IndexState.ACTIVE)
        if backfill:
            self._backfill_index(stamped)
        return index_table

    def create_index_online(self, index: IndexDescriptor,
                            split_keys: Optional[List[bytes]] = None,
                            prefix_compression: bool = False,
                            compaction_policy: Optional[str] = None):
        """Online CREATE INDEX (§7's creation utility, run inside simulated
        time): attach the descriptor in BUILDING state — dual-writes by the
        existing observers start immediately — then submit a DDL job that
        backfills existing rows in chunks, catches up, verifies, and flips
        the index ACTIVE.  Reads raise :class:`IndexBuildingError` until
        then.  A plain function (not a coroutine) so a workload driver can
        inject it mid-run via ``sim.call_at``; returns the
        :class:`repro.ddl.jobs.DdlJob` handle."""
        base = self.descriptor(index.base_table)
        if index.name in base.indexes:
            from repro.errors import IndexExistsError
            raise IndexExistsError(index.name)
        if index.is_local:
            raise ValueError(
                "local indexes build offline (entries are region-co-located"
                " and crash-atomic with the base rows); use "
                "backfill='offline'")
        index_table = TableDescriptor(
            index.table_name, TableKind.INDEX,
            max_versions=base.max_versions,
            flush_threshold_bytes=base.flush_threshold_bytes,
            block_bytes=base.block_bytes,
            prefix_compression=prefix_compression,
            scan_engine=base.scan_engine,
            learned_index=base.learned_index,
            compaction_policy=compaction_policy or base.compaction_policy,
            memtable_map=base.memtable_map)
        self.master.create_table(index_table, split_keys=split_keys)
        stamped = self._attach_index_descriptor(index, IndexState.BUILDING)
        return self.ddl.submit_create(stamped)

    def change_index_scheme(self, index_name: str,
                            new_scheme, scrub: bool = True,
                            online: bool = False):
        """Switch an index's maintenance scheme at runtime (the adaptive
        controller's actuator; see :mod:`repro.core.adaptive`).

        Moving away from a lazy scheme (sync-insert's read repair,
        validation's read filter) to a scheme whose reads trust the
        index requires removing the stale entries first — ``scrub`` does
        that: synchronously and cost-free by default, or
        (``online=True``) as a chunked sim-time scrub job during which
        reads keep the Algorithm 2 double-check (IndexState.TRANSITION)
        — returns the DdlJob in that case.  Switching between two lazy
        schemes (sync-insert ↔ validation) never scrubs: both read
        paths tolerate the same stale entries.
        Pending AUQ work from an async phase needs no special handling:
        deliveries are idempotent and timestamped, so they stay correct
        under the new scheme."""
        from repro.core.schemes import IndexScheme
        index = self.index_descriptor(index_name)
        if index.scheme is new_scheme:
            return None
        leaving_lazy = index.scheme.is_lazy
        needs_scrub = scrub and leaving_lazy and not new_scheme.is_lazy
        if online and not index.is_local:
            return self.ddl.submit_alter(index, new_scheme,
                                         scrub=needs_scrub)
        new_descriptor = dataclasses.replace(index, scheme=new_scheme)
        self._set_index_descriptor(new_descriptor)
        if needs_scrub:
            self._scrub_stale_entries(new_descriptor)
        return None

    def _scrub_stale_entries(self, index: IndexDescriptor) -> None:
        """Tombstone every stale entry (WAL-logged, cost-free DDL path)."""
        from repro.core.verify import actual_entries, expected_entries
        expected = expected_entries(self, index)
        actual = actual_entries(self, index)
        for key, ts in actual.items():
            if key in expected:
                continue
            info = self.master.locate(index.table_name, key)
            server = self.servers[info.server_name]
            region = server.regions[info.region_name]
            tomb = Cell(key, ts, None)
            record = server.wal.append(info.region_name, index.table_name,
                                       (tomb,))
            region.tree.add(tomb, seqno=record.seqno)

    def drop_index(self, index_name: str, online: bool = False):
        """DROP INDEX.  ``online=True`` routes through the DDL job (a
        DROPPING record is persisted first, so a crash mid-drop resumes)
        and returns the DdlJob; the default drops instantly.  Either way,
        pending AUQ deliveries for the dropped index are cancelled by the
        epoch filter — they can no longer resurrect entries in a
        same-named recreated index."""
        if online:
            return self.ddl.submit_drop(self.index_descriptor(index_name))
        self._drop_index_now(index_name)
        return None

    def _drop_index_now(self, index_name: str) -> None:
        index = self.index_descriptor(index_name)
        base = self.descriptor(index.base_table)
        base.detach_index(index_name)
        self._observer_cache.pop(index.base_table, None)
        # Invalidate in-flight maintenance: delivery filters compare the
        # live registry against each op's planning epoch.
        self.ddl_epoch += 1
        self.index_by_table.pop(index.table_name, None)
        if index.is_local:
            # No table to drop; tombstone the reserved-keyspace entries so
            # a later same-named index cannot resurrect them.
            from repro.core.local import local_scan_range
            from repro.lsm.types import KeyRange
            reserved = local_scan_range(index.name, KeyRange())
            for info in self.master.layout[index.base_table]:
                server = self.servers[info.server_name]
                region = server.regions.get(info.region_name)
                if region is None:
                    continue
                doomed = tuple(Cell(cell.key, cell.ts, None)
                               for cell in region.tree.scan(reserved))
                if doomed:
                    record = server.wal.append(info.region_name,
                                               index.base_table, doomed)
                    region.tree.add_many(doomed, seqno=record.seqno)
            return
        self.master.drop_table(index.table_name)

    def _backfill_index(self, index: IndexDescriptor) -> None:
        """Offline index build over existing base rows (the client-side
        "utility for index creation" of §7).  Entries are WAL-logged so a
        crash cannot silently lose built entries."""
        for info in self.master.layout[index.base_table]:
            server = self.servers[info.server_name]
            region = server.regions[info.region_name]
            for row, row_data in region.iter_base_rows():
                values = {col: value
                          for col, (value, _ts) in row_data.items()}
                tup = extract_index_values(index, values)
                if tup is None:
                    continue
                entry_ts = max(ts for col, (_v, ts) in row_data.items()
                               if col in index.columns)
                entry = Cell(row_index_key(index, tup, row), entry_ts, b"")
                target_info = self.master.locate(index.table_name, entry.key)
                target = self.servers[target_info.server_name]
                target_region = target.regions[target_info.region_name]
                record = target.wal.append(target_info.region_name,
                                           index.table_name, (entry,))
                target_region.tree.add(entry, seqno=record.seqno)

    def _backfill_local_index(self, index: IndexDescriptor) -> None:
        from repro.core.local import local_entry_key
        for info in self.master.layout[index.base_table]:
            server = self.servers[info.server_name]
            region = server.regions[info.region_name]
            entries = []
            for row, row_data in region.iter_base_rows():
                values = {col: value
                          for col, (value, _ts) in row_data.items()}
                tup = extract_index_values(index, values)
                if tup is None:
                    continue
                entry_ts = max(ts for col, (_v, ts) in row_data.items()
                               if col in index.columns)
                entries.append(Cell(
                    local_entry_key(index.name,
                                    row_index_key(index, tup, row)),
                    entry_ts, b""))
            if entries:
                record = server.wal.append(info.region_name,
                                           index.base_table, tuple(entries))
                region.tree.add_many(tuple(entries), seqno=record.seqno)

    # -- routing (server-side authoritative view) -------------------------------------

    def locate(self, table: str, row: bytes) -> Tuple[RegionServer, str]:
        info = self.master.locate(table, row)
        return self.servers[info.server_name], info.region_name

    # -- clients & driving --------------------------------------------------------------

    def new_client(self, name: str = "client",
                   read_mode: Any = "leader") -> Client:
        return Client(self, name=name, read_mode=read_mode)

    def run(self, gen: Generator, name: str = "task") -> Any:
        """Blocking facade: drive the simulator until ``gen`` completes."""
        return self.sim.run_until_complete(self.sim.spawn(gen, name=name))

    def spawn(self, gen: Generator, name: str = "task") -> Process:
        return self.sim.spawn(gen, name=name)

    def advance(self, ms: float) -> None:
        """Let background work (APS, flushes, heartbeats) run for ``ms``."""
        self.sim.run(until=self.sim.now() + ms)

    # -- quiescing -----------------------------------------------------------------------

    def auq_backlog(self) -> int:
        return sum(len(s.auq) + s.auq_inflight.count
                   for s in self.alive_servers())

    def quiesce(self, step_ms: float = 20.0,
                max_wait_ms: float = 600_000.0) -> None:
        """Advance simulated time until every AUQ is drained — the
        "eventually" in eventual consistency, made explicit for tests."""
        deadline = self.sim.now() + max_wait_ms
        while self.sim.now() < deadline:
            if (self.auq_backlog() == 0
                    and self.validation_cleaner.backlog == 0
                    and not any(s.put_inflight.count
                                for s in self.alive_servers())):
                return
            self.advance(step_ms)
        raise SimulationError(
            f"AUQs not drained after {max_wait_ms} ms "
            f"(backlog={self.auq_backlog()}, "
            f"cleaner={self.validation_cleaner.backlog})")
