#!/usr/bin/env python
"""Docs lint: the documentation must keep up with the package layout.

Fails CI when:

* a package under ``src/repro/`` has no anchor section in DESIGN.md
  (every subsystem gets a design chapter before it ships);
* a public class re-exported in ``repro.__all__`` is missing a
  docstring (the README points users at ``help(repro.X)``);
* README.md's architecture map forgets a package;
* OPERATIONS.md's module coverage forgets a package (the operator guide
  must tell an operator where every subsystem's knobs live).

Run as ``PYTHONPATH=src python scripts/docs_lint.py`` from the repo root.
"""

from __future__ import annotations

import inspect
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def repro_packages() -> list:
    return sorted(p.name for p in SRC.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists())


def check_design_anchors(errors: list) -> None:
    design = (REPO / "DESIGN.md").read_text()
    for package in repro_packages():
        needle = f"repro.{package}"
        if needle not in design:
            errors.append(
                f"DESIGN.md has no section mentioning `{needle}` — every "
                f"src/repro/* package needs a design anchor")


def check_readme_module_map(errors: list) -> None:
    readme = (REPO / "README.md").read_text()
    for package in repro_packages():
        needle = f"repro/{package}"
        if needle not in readme and f"repro.{package}" not in readme:
            errors.append(
                f"README.md's module map does not mention `{needle}`")


def check_operations_coverage(errors: list) -> None:
    operations = REPO / "OPERATIONS.md"
    if not operations.exists():
        errors.append("OPERATIONS.md is missing — the operator guide "
                      "ships with the repo")
        return
    text = operations.read_text()
    for package in repro_packages():
        if f"repro.{package}" not in text \
                and f"repro/{package}" not in text:
            errors.append(
                f"OPERATIONS.md does not mention `repro.{package}` — the "
                f"operator guide's module coverage must name every "
                f"src/repro/* package")


def check_public_docstrings(errors: list) -> None:
    import repro
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
            errors.append(
                f"repro.{name} is public (in repro.__all__) but the class "
                f"has no docstring")


def main() -> int:
    errors: list = []
    check_design_anchors(errors)
    check_readme_module_map(errors)
    check_operations_coverage(errors)
    check_public_docstrings(errors)
    if errors:
        for error in errors:
            print(f"docs-lint: {error}", file=sys.stderr)
        return 1
    packages = ", ".join(repro_packages())
    print(f"docs-lint ok ({packages})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
